// Confidence-driven adaptive measurement policy: the per-repetition
// stop/abandon rule (measure_policy.hpp), the runner's adaptive loop and
// raced-out top-up path, and the session-level contracts — determinism
// across eval_threads, run savings against the fixed-repetition loop, and
// bit-identity of the policy-off path.
#include "harness/measure_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "determinism_matrix.hpp"
#include "harness/runner.hpp"
#include "support/log.hpp"
#include "support/statistics.hpp"
#include "tuner/algorithms.hpp"
#include "tuner/search_space.hpp"
#include "tuner/session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

// ---------------------------------------------------------------------------
// StopReason serialization

TEST(StopReasonStrings, RoundTripsEveryReason) {
  for (StopReason stop :
       {StopReason::kFull, StopReason::kConverged, StopReason::kRacedOut,
        StopReason::kBudgetCut, StopReason::kCancelled}) {
    EXPECT_EQ(stop_reason_from_string(to_string(stop)), stop);
  }
}

TEST(StopReasonStrings, UnknownLabelsReadAsFull) {
  EXPECT_EQ(stop_reason_from_string(""), StopReason::kFull);
  EXPECT_EQ(stop_reason_from_string("exploded"), StopReason::kFull);
}

TEST(IncumbentSnapshotTest, RoundTripsThroughMoments) {
  RunningStat s;
  for (double x : {100.0, 102.5, 98.0, 101.0}) s.add(x);
  const IncumbentSnapshot snap{s.count(), s.mean(), s.m2()};
  ASSERT_TRUE(snap.usable());
  const RunningStat back = snap.to_stat();
  EXPECT_EQ(back.count(), s.count());
  EXPECT_DOUBLE_EQ(back.mean(), s.mean());
  EXPECT_DOUBLE_EQ(back.variance(), s.variance());
  EXPECT_FALSE((IncumbentSnapshot{1, 100.0, 0.0}).usable());
}

// ---------------------------------------------------------------------------
// Decision rule (pure, no simulator)

RunningStat stat_of(std::initializer_list<double> xs) {
  RunningStat s;
  for (double x : xs) s.add(x);
  return s;
}

MeasurementPolicyOptions adaptive_options() {
  MeasurementPolicyOptions o;
  o.adaptive = true;
  return o;
}

TEST(MeasurementPolicyTest, DisabledPolicyNeverStops) {
  MeasurementPolicyOptions off;  // adaptive = false
  MeasurementPolicy policy(off, IncumbentSnapshot{});
  // Even a perfectly tight sample continues: the fixed loop is in charge.
  EXPECT_EQ(policy.after_rep(stat_of({100.0, 100.0, 100.0})),
            MeasurementPolicy::Decision::kContinue);
}

TEST(MeasurementPolicyTest, NeverDecidesBeforeTwoRepetitions) {
  MeasurementPolicy policy(adaptive_options(), IncumbentSnapshot{});
  EXPECT_EQ(policy.after_rep(stat_of({100.0})),
            MeasurementPolicy::Decision::kContinue);
}

TEST(MeasurementPolicyTest, ConvergesWhenCiWithinRelativeThreshold) {
  MeasurementPolicy policy(adaptive_options(), IncumbentSnapshot{});
  // Five reps, ~0.1% spread: CI95 half-width well inside 2% of the mean.
  EXPECT_EQ(policy.after_rep(stat_of({100.0, 100.1, 99.9, 100.05, 99.95})),
            MeasurementPolicy::Decision::kConverged);
  // Wide spread at the same count: keep sampling.
  EXPECT_EQ(policy.after_rep(stat_of({80.0, 120.0, 95.0, 110.0, 90.0})),
            MeasurementPolicy::Decision::kContinue);
}

TEST(MeasurementPolicyTest, RacesOutStatisticallyWorseSample) {
  const RunningStat incumbent = stat_of({100.0, 101.0, 99.0, 100.0, 100.5});
  const IncumbentSnapshot snap{incumbent.count(), incumbent.mean(),
                               incumbent.m2()};
  MeasurementPolicy policy(adaptive_options(), snap);
  // Far above the incumbent but too noisy to have converged: abandon.
  EXPECT_EQ(policy.after_rep(stat_of({140.0, 160.0, 150.0})),
            MeasurementPolicy::Decision::kRacedOut);
}

TEST(MeasurementPolicyTest, BetterSampleIsNeverRacedOut) {
  const RunningStat incumbent = stat_of({100.0, 101.0, 99.0, 100.0, 100.5});
  MeasurementPolicy policy(
      adaptive_options(),
      IncumbentSnapshot{incumbent.count(), incumbent.mean(), incumbent.m2()});
  // Far *below* the incumbent: a potential winner keeps measuring no matter
  // how significant the difference is.
  EXPECT_EQ(policy.after_rep(stat_of({40.0, 60.0, 50.0})),
            MeasurementPolicy::Decision::kContinue);
}

TEST(MeasurementPolicyTest, NoRacingWithoutUsableIncumbent) {
  MeasurementPolicy policy(adaptive_options(),
                           IncumbentSnapshot{1, 100.0, 0.0});
  EXPECT_EQ(policy.after_rep(stat_of({140.0, 160.0, 150.0})),
            MeasurementPolicy::Decision::kContinue);
}

TEST(MeasurementPolicyTest, ConvergenceWinsOverRacingForTightLosers) {
  const RunningStat incumbent = stat_of({100.0, 101.0, 99.0, 100.0, 100.5});
  MeasurementPolicy policy(
      adaptive_options(),
      IncumbentSnapshot{incumbent.count(), incumbent.mean(), incumbent.m2()});
  // A loser whose own mean is already tight is kept as kConverged — the
  // session compares objectives, and a tight loser is an honest datapoint.
  EXPECT_EQ(policy.after_rep(stat_of({150.0, 150.1, 149.9, 150.05})),
            MeasurementPolicy::Decision::kConverged);
}

// ---------------------------------------------------------------------------
// Runner integration

WorkloadSpec policy_workload() {
  WorkloadSpec w;
  w.name = "policy-test";
  w.total_work = 400;
  w.startup_work = 80;
  w.startup_classes = 1000;
  w.noise_sigma = 0.01;
  return w;
}

IncumbentSnapshot snapshot_of(const Measurement& m) {
  RunningStat s;
  for (double t : m.times_ms) s.add(t);
  return IncumbentSnapshot{s.count(), s.mean(), s.m2()};
}

class MeasurePolicyRunnerTest : public ::testing::Test {
 protected:
  MeasurePolicyRunnerTest() { set_log_level(LogLevel::kWarn); }

  BenchmarkRunner make_runner(const MeasurementPolicyOptions& policy,
                              int repetitions = 3) {
    RunnerOptions options;
    options.repetitions = repetitions;
    options.policy = policy;
    return BenchmarkRunner(sim_, policy_workload(), options);
  }

  Configuration defaults() { return Configuration(FlagRegistry::hotspot()); }

  Configuration slow() {
    Configuration c(FlagRegistry::hotspot());
    c.set_enum("ExecutionMode", "int");  // several times slower
    return c;
  }

  JvmSimulator sim_;
};

TEST_F(MeasurePolicyRunnerTest, AdaptiveRunnerStopsOnConvergence) {
  MeasurementPolicyOptions policy = adaptive_options();
  policy.max_reps = 10;
  policy.ci_rel = 0.05;  // generous: 1% noise converges in a few reps
  BenchmarkRunner runner = make_runner(policy);
  const Measurement m = runner.measure(defaults());
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(m.stop, StopReason::kConverged);
  EXPECT_GE(m.times_ms.size(), 2u);
  EXPECT_LT(m.times_ms.size(), 10u);
}

TEST_F(MeasurePolicyRunnerTest, AdaptiveRunnerRacesOutWorseCandidate) {
  MeasurementPolicyOptions policy = adaptive_options();
  policy.max_reps = 10;
  policy.ci_rel = 0.001;  // tight enough that racing decides first
  BenchmarkRunner runner = make_runner(policy);
  const Measurement base = runner.measure(defaults());
  ASSERT_TRUE(base.valid());

  EvalHints hints;
  hints.incumbent = snapshot_of(base);
  const Measurement m = runner.measure(slow(), nullptr, hints);
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(m.stop, StopReason::kRacedOut);
  EXPECT_LT(m.times_ms.size(), 10u);
  EXPECT_GT(m.objective(), base.objective());
}

TEST_F(MeasurePolicyRunnerTest, PolicyOffIgnoresHintsBitForBit) {
  MeasurementPolicyOptions off;  // adaptive = false
  BenchmarkRunner plain = make_runner(off);
  BenchmarkRunner hinted = make_runner(off);
  const Measurement base = plain.measure(defaults());

  const Measurement expected = plain.measure(slow());
  EvalHints hints;
  hints.incumbent = snapshot_of(base);
  const Measurement m = hinted.measure(slow(), nullptr, hints);
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(m.times_ms, expected.times_ms);
  EXPECT_EQ(m.stop, StopReason::kFull);
  EXPECT_EQ(expected.stop, StopReason::kFull);
}

TEST_F(MeasurePolicyRunnerTest, TopUpMergeIsBitIdenticalToFromScratch) {
  MeasurementPolicyOptions policy = adaptive_options();
  policy.max_reps = 8;
  policy.ci_rel = 0.0005;  // never converges at this noise: runs to the cap
  BenchmarkRunner runner = make_runner(policy);
  const Measurement base = runner.measure(defaults());
  ASSERT_TRUE(base.valid());
  const std::int64_t runs_after_base = runner.runs_executed();

  // Race the slow candidate out against the incumbent: a truncated,
  // cached partial.
  EvalHints race;
  race.incumbent = snapshot_of(base);
  const Measurement partial = runner.measure(slow(), nullptr, race);
  ASSERT_EQ(partial.stop, StopReason::kRacedOut);
  const std::size_t partial_reps = partial.times_ms.size();
  ASSERT_LT(partial_reps, 8u);

  // Top it up (no incumbent: the continuation runs to the cap).
  EvalHints topup;
  topup.top_up = true;
  const Measurement merged = runner.measure(slow(), nullptr, topup);
  ASSERT_TRUE(merged.valid());
  EXPECT_EQ(merged.stop, StopReason::kFull);
  ASSERT_EQ(merged.times_ms.size(), 8u);
  // Only the missing repetitions were executed.
  EXPECT_EQ(runner.runs_executed() - runs_after_base, 8);

  // A fresh runner measuring from scratch produces the same repetitions
  // bit for bit: seed continuity makes the merge invisible.
  BenchmarkRunner fresh = make_runner(policy);
  const Measurement scratch = fresh.measure(slow());
  ASSERT_TRUE(scratch.valid());
  EXPECT_EQ(merged.times_ms, scratch.times_ms);
  EXPECT_EQ(merged.stop, scratch.stop);
  EXPECT_EQ(merged.summary.mean, scratch.summary.mean);

  // The merged result replaced the cached partial: a repeat answers from
  // the cache with the full measurement.
  const Measurement again = runner.measure(slow());
  EXPECT_EQ(again.times_ms, merged.times_ms);
  EXPECT_EQ(runner.runs_executed() - runs_after_base, 8);
}

TEST_F(MeasurePolicyRunnerTest, TopUpLeavesConvergedMeasurementsAlone) {
  MeasurementPolicyOptions policy = adaptive_options();
  policy.max_reps = 10;
  policy.ci_rel = 0.05;
  BenchmarkRunner runner = make_runner(policy);
  const Measurement first = runner.measure(defaults());
  ASSERT_EQ(first.stop, StopReason::kConverged);
  const std::int64_t runs = runner.runs_executed();

  EvalHints topup;
  topup.top_up = true;
  const Measurement again = runner.measure(defaults(), nullptr, topup);
  EXPECT_EQ(again.times_ms, first.times_ms);
  EXPECT_EQ(runner.runs_executed(), runs);  // cache hit, nothing re-run
}

// ---------------------------------------------------------------------------
// Session integration

class MeasurePolicySessionTest : public ::testing::Test {
 protected:
  MeasurePolicySessionTest() { set_log_level(LogLevel::kWarn); }

  SessionOptions session_options(bool adaptive, std::size_t threads) {
    SessionOptions options;
    options.budget = SimTime::minutes(10);
    options.repetitions = 5;
    options.seed = 77;
    options.eval_threads = threads;
    options.inflight = 8;
    if (adaptive) {
      options.measurement.adaptive = true;
      options.measurement.max_reps = 5;
      options.measurement.ci_rel = 0.02;
      options.measurement.race_p = 0.05;
    }
    return options;
  }

  JvmSimulator sim_;
};

// Determinism: the adaptive policy makes its decisions from dispatch-time
// incumbent snapshots captured on the control thread, so the trajectory —
// including stop reasons — is identical for any eval_threads.
TEST_F(MeasurePolicySessionTest, AdaptiveTrajectoryIdenticalAcrossEvalThreads) {
  for (const char* name : {"random", "hill"}) {
    DeterminismMatrix matrix;
    matrix.cases = {{.eval_threads = 4}};
    matrix.compare_stop = true;  // the policy's early stops must replay too
    run_determinism_matrix(
        sim_, policy_workload(), session_options(true, 0),
        [&]() -> std::unique_ptr<SearchStrategy> {
          if (std::string(name) == "random")
            return std::make_unique<RandomSearch>(0.15);
          return std::make_unique<HillClimber>();
        },
        matrix, name);
  }
}

// The point of the policy: equal budget, strictly fewer simulator runs
// than the fixed-repetition loop, with the winner's quality preserved.
TEST_F(MeasurePolicySessionTest, AdaptiveSavesRunsAtEqualBudget) {
  TuningSession fixed_session(sim_, policy_workload(),
                              session_options(false, 0));
  RandomSearch fixed_strategy(0.15);
  const TuningOutcome fixed = fixed_session.run(fixed_strategy);

  TuningSession adaptive_session(sim_, policy_workload(),
                                 session_options(true, 0));
  RandomSearch adaptive_strategy(0.15);
  const TuningOutcome adaptive = adaptive_session.run(adaptive_strategy);

  ASSERT_TRUE(std::isfinite(adaptive.best_ms));
  // Same budget, more candidates explored per run spent.
  EXPECT_GE(adaptive.evaluations, fixed.evaluations);
  EXPECT_LT(static_cast<double>(adaptive.runs) / adaptive.evaluations,
            static_cast<double>(fixed.runs) / fixed.evaluations);
  // Quality within noise of the fixed loop's winner.
  EXPECT_LE(adaptive.best_ms, fixed.best_ms * 1.05);

  // The policy actually engaged: truncated stop reasons appear in the log.
  bool saw_policy_stop = false;
  for (const EvalRecord& rec : adaptive.db->all()) {
    if (rec.stop == StopReason::kConverged ||
        rec.stop == StopReason::kRacedOut) {
      saw_policy_stop = true;
    }
  }
  EXPECT_TRUE(saw_policy_stop);
  for (const EvalRecord& rec : fixed.db->all()) {
    EXPECT_NE(rec.stop, StopReason::kConverged);
    EXPECT_NE(rec.stop, StopReason::kRacedOut);
  }
}

// Policy-off taxonomy: with the policy disabled, records read stop=full —
// or budget_cut for the measurements the budget expired under, which is
// the pre-existing truncation now labeled — but never a policy decision
// (converged/raced_out only exist when the policy is on).
TEST_F(MeasurePolicySessionTest, DisabledPolicyNeverEmitsPolicyStops) {
  TuningSession session(sim_, policy_workload(), session_options(false, 0));
  RandomSearch strategy(0.15);
  const TuningOutcome outcome = session.run(strategy);
  ASSERT_GT(outcome.db->size(), 0u);
  bool saw_full = false;
  for (const EvalRecord& rec : outcome.db->all()) {
    EXPECT_TRUE(rec.stop == StopReason::kFull ||
                rec.stop == StopReason::kBudgetCut)
        << to_string(rec.stop);
    saw_full = saw_full || rec.stop == StopReason::kFull;
  }
  EXPECT_TRUE(saw_full);
}

}  // namespace
}  // namespace jat
