// Metamorphic properties of the simulator: directional invariants that
// must hold for ANY workload, checked across both suites. These are the
// tests that pin the model's physics down — each one is a relation the
// real HotSpot also obeys.
#include <gtest/gtest.h>

#include "jvmsim/engine.hpp"
#include "support/units.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

/// Noise off so comparisons are exact.
WorkloadSpec quiet(WorkloadSpec w) {
  w.noise_sigma = 0.0;
  return w;
}

std::vector<std::string> all_suite_names() {
  std::vector<std::string> names;
  for (const auto& w : specjvm2008_startup()) names.push_back(w.name);
  for (const auto& w : dacapo()) names.push_back(w.name);
  return names;
}

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

class MetamorphicSweep : public ::testing::TestWithParam<std::string> {
 protected:
  JvmSimulator sim_;
  WorkloadSpec workload_ = quiet(find_workload(GetParam()));

  RunResult run(const Configuration& config) {
    RunResult r = sim_.run(config, workload_, /*seed=*/5);
    EXPECT_FALSE(r.crashed) << workload_.name << ": " << r.crash_reason;
    return r;
  }
};

TEST_P(MetamorphicSweep, InterpreterOnlyIsNeverFaster) {
  Configuration mixed(FlagRegistry::hotspot());
  Configuration interpreted(FlagRegistry::hotspot());
  interpreted.set_enum("ExecutionMode", "int");
  EXPECT_GE(run(interpreted).total_time, run(mixed).total_time);
}

TEST_P(MetamorphicSweep, BiggerHeapNeverCollectsMoreOften) {
  // "small" is the 1 GiB default (every suite live set fits it); shrinking
  // further would genuinely OOM the big-heap DaCapo programs.
  Configuration small(FlagRegistry::hotspot());
  Configuration big(FlagRegistry::hotspot());
  big.set_int("MaxHeapSize", 4 * kGiB);
  EXPECT_LE(run(big).young_gc_count + run(big).full_gc_count,
            run(small).young_gc_count + run(small).full_gc_count + 1);
}

TEST_P(MetamorphicSweep, SkippingVerificationNeverSlowsClassLoad) {
  Configuration verified(FlagRegistry::hotspot());
  Configuration unverified(FlagRegistry::hotspot());
  unverified.set_bool("BytecodeVerificationRemote", false);
  EXPECT_LE(run(unverified).class_load_time, run(verified).class_load_time);
}

TEST_P(MetamorphicSweep, UncompressedOopsNeverShrinkTheFootprint) {
  Configuration compressed(FlagRegistry::hotspot());
  Configuration wide(FlagRegistry::hotspot());
  wide.set_bool("UseCompressedOops", false);
  EXPECT_GE(run(wide).peak_heap_used, run(compressed).peak_heap_used);
}

TEST_P(MetamorphicSweep, SingleGcThreadNeverPausesLess) {
  Configuration one(FlagRegistry::hotspot());
  one.set_int("ParallelGCThreads", 1);
  Configuration eight(FlagRegistry::hotspot());
  eight.set_int("ParallelGCThreads", 8);
  const RunResult r_one = run(one);
  const RunResult r_eight = run(eight);
  if (r_one.young_gc_count == 0) return;  // nothing to compare
  // Per-pause comparison (counts may differ slightly via adaptive sizing).
  const double per_one =
      r_one.gc_pause_total.as_millis() /
      static_cast<double>(r_one.young_gc_count + r_one.full_gc_count);
  const double per_eight =
      r_eight.gc_pause_total.as_millis() /
      static_cast<double>(std::max<std::int64_t>(
          1, r_eight.young_gc_count + r_eight.full_gc_count));
  EXPECT_GE(per_one, per_eight * 0.999);
}

TEST_P(MetamorphicSweep, MoreWorkTakesLonger) {
  WorkloadSpec longer = workload_;
  longer.total_work *= 1.5;
  const Configuration defaults(FlagRegistry::hotspot());
  const RunResult base = sim_.run(defaults, workload_, 5);
  const RunResult more = sim_.run(defaults, longer, 5);
  ASSERT_FALSE(base.crashed);
  ASSERT_FALSE(more.crashed);
  EXPECT_GT(more.total_time, base.total_time);
}

TEST_P(MetamorphicSweep, HigherAllocationNeverCollectsLess) {
  WorkloadSpec heavy = workload_;
  heavy.alloc_rate *= 2.0;
  const Configuration defaults(FlagRegistry::hotspot());
  const RunResult base = sim_.run(defaults, workload_, 5);
  const RunResult more = sim_.run(defaults, heavy, 5);
  ASSERT_FALSE(base.crashed);
  ASSERT_FALSE(more.crashed);
  EXPECT_GE(more.young_gc_count, base.young_gc_count);
}

TEST_P(MetamorphicSweep, DisablingTlabNeverSpeedsAllocationHeavyCode) {
  Configuration with_tlab(FlagRegistry::hotspot());
  Configuration without(FlagRegistry::hotspot());
  without.set_bool("UseTLAB", false);
  EXPECT_GE(run(without).total_time, run(with_tlab).total_time);
}

TEST_P(MetamorphicSweep, GrowingHeapMonotonicallyForStopTheWorldCollectors) {
  // Stronger form of BiggerHeapNeverCollectsMoreOften, restricted to the
  // two stop-the-world collectors where the relation is exact: with no
  // concurrent cycles or adaptive pause goals in play, every doubling of
  // the heap must keep the total collection count non-increasing along
  // the whole chain, not just between two endpoints.
  for (const char* collector : {"UseSerialGC", "UseParallelGC"}) {
    std::int64_t previous = -1;
    for (std::int64_t heap = kGiB; heap <= 4 * kGiB; heap *= 2) {
      Configuration config(FlagRegistry::hotspot());
      config.set_bool("UseSerialGC", false);
      config.set_bool("UseParallelGC", false);
      config.set_bool(collector, true);
      config.set_int("MaxHeapSize", heap);
      const RunResult r = run(config);
      const std::int64_t collections = r.young_gc_count + r.full_gc_count;
      if (previous >= 0) {
        EXPECT_LE(collections, previous)
            << collector << " at heap " << heap / kMiB << "m";
      }
      previous = collections;
    }
  }
}

TEST_P(MetamorphicSweep, MaxPauseNeverExceedsTotalPause) {
  // A single stop-the-world pause cannot be longer than the sum of all of
  // them — for any collector. (Equality is legal: exactly one pause.)
  for (const char* collector :
       {"UseSerialGC", "UseParallelGC", "UseConcMarkSweepGC", "UseG1GC"}) {
    Configuration config(FlagRegistry::hotspot());
    config.set_bool("UseSerialGC", false);
    config.set_bool("UseParallelGC", false);
    config.set_bool(collector, true);
    const RunResult r = run(config);
    EXPECT_LE(r.gc_pause_max, r.gc_pause_total) << collector;
    if (r.young_gc_count + r.full_gc_count == 0) {
      EXPECT_EQ(r.gc_pause_total, SimTime::zero()) << collector;
    }
  }
}

TEST_P(MetamorphicSweep, ThroughputAndRunTimeRankInverselyOnCrashFreeRuns) {
  // On a crash-free run the workload completes all its work, so throughput
  // is exactly total_work / total_time — a faster configuration must never
  // report lower throughput. Ranking by throughput and ranking by run time
  // are the same ordering reversed; a tuner may maximize either.
  std::vector<RunResult> results;
  results.push_back(run(Configuration(FlagRegistry::hotspot())));
  {
    Configuration big(FlagRegistry::hotspot());
    big.set_int("MaxHeapSize", 4 * kGiB);
    results.push_back(run(big));
  }
  {
    Configuration slow(FlagRegistry::hotspot());
    slow.set_enum("ExecutionMode", "int");
    results.push_back(run(slow));
  }
  for (const RunResult& r : results) {
    EXPECT_GT(r.throughput(), 0.0);
    EXPECT_DOUBLE_EQ(r.work_done, workload_.total_work);
  }
  for (std::size_t a = 0; a < results.size(); ++a) {
    for (std::size_t b = a + 1; b < results.size(); ++b) {
      const bool faster = results[a].total_time < results[b].total_time;
      const bool slower = results[b].total_time < results[a].total_time;
      if (faster) {
        EXPECT_GT(results[a].throughput(), results[b].throughput());
      } else if (slower) {
        EXPECT_LT(results[a].throughput(), results[b].throughput());
      } else {
        EXPECT_DOUBLE_EQ(results[a].throughput(), results[b].throughput());
      }
    }
  }
}

TEST_P(MetamorphicSweep, CodeCacheStarvationNeverHelps) {
  Configuration normal(FlagRegistry::hotspot());
  Configuration starved(FlagRegistry::hotspot());
  starved.set_int("ReservedCodeCacheSize", 4 * kMiB);
  starved.set_int("InitialCodeCacheSize", kMiB);
  starved.set_bool("UseCodeCacheFlushing", false);
  EXPECT_GE(run(starved).total_time * 1.0001, run(normal).total_time);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MetamorphicSweep,
                         ::testing::ValuesIn(all_suite_names()),
                         [](const auto& info) { return sanitize(info.param); });

}  // namespace
}  // namespace jat
