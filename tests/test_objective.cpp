// Pluggable tuning objectives (harness/objective.hpp): the factory and its
// error surface, scalarization semantics per built-in (crash/empty edge
// cases, throughput negation, composite penalty monotonicity), the
// runner's per-repetition metric rows, the run_time bit-identity contract
// (including a byte-compare against a committed pre-objective golden log),
// and the structured warnings tolerant readers raise on unknown labels.
#include "harness/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "determinism_matrix.hpp"
#include "harness/journal.hpp"
#include "harness/runner.hpp"
#include "jvmsim/run_result.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "tuner/algorithms.hpp"
#include "tuner/session.hpp"
#include "tuner/suite_session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "jat_objective_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

MetricVector make_rep(double time_ms, double startup_ms, double throughput,
                      double pause_max_ms, double pause_total_ms,
                      double heap_mb) {
  MetricVector rep;
  rep[MetricId::kTotalTimeMs] = time_ms;
  rep[MetricId::kStartupTimeMs] = startup_ms;
  rep[MetricId::kThroughput] = throughput;
  rep[MetricId::kGcPauseMaxMs] = pause_max_ms;
  rep[MetricId::kGcPauseTotalMs] = pause_total_ms;
  rep[MetricId::kPeakHeapMb] = heap_mb;
  return rep;
}

Measurement make_measurement(const std::vector<MetricVector>& reps) {
  Measurement m;
  for (const MetricVector& rep : reps) {
    m.times_ms.push_back(rep[MetricId::kTotalTimeMs]);
    m.rep_metrics.push_back(rep);
  }
  m.summary = summarize(m.times_ms);
  return m;
}

std::vector<std::shared_ptr<const Objective>> all_builtins() {
  return {make_objective("run_time"),  make_objective("startup_time"),
          make_objective("throughput"), make_objective("pause_max"),
          make_objective("footprint"),  make_objective("composite")};
}

// ---------------------------------------------------------------------------
// Factory and error surface

TEST(ObjectiveFactory, ParsesEveryBuiltinName) {
  EXPECT_EQ(make_objective("run_time")->kind(), Objective::Kind::kRunTime);
  EXPECT_EQ(make_objective("startup_time")->kind(),
            Objective::Kind::kStartupTime);
  EXPECT_EQ(make_objective("throughput")->kind(),
            Objective::Kind::kThroughput);
  EXPECT_EQ(make_objective("pause_max")->kind(), Objective::Kind::kPauseMax);
  EXPECT_EQ(make_objective("footprint")->kind(), Objective::Kind::kFootprint);
  EXPECT_EQ(make_objective("composite")->kind(), Objective::Kind::kComposite);
}

TEST(ObjectiveFactory, CanonicalIdRoundTrips) {
  for (const auto& objective : all_builtins()) {
    const auto reparsed = make_objective(objective->id());
    EXPECT_EQ(reparsed->id(), objective->id());
    EXPECT_EQ(reparsed->kind(), objective->kind());
  }
  // Composite parameters survive the round trip at full precision.
  const auto composite =
      make_objective("composite:pause_limit_ms=12.5,penalty=3.25");
  EXPECT_EQ(composite->id(), "composite:pause_limit_ms=12.5,penalty=3.25");
  const MetricVector rep = make_rep(100, 50, 10, 20.5, 30, 64);
  EXPECT_DOUBLE_EQ(make_objective(composite->id())->rep_value(rep),
                   composite->rep_value(rep));
}

TEST(ObjectiveFactory, UnknownNameListsTheValidSet) {
  try {
    make_objective("speed");
    FAIL() << "expected ObjectiveError";
  } catch (const ObjectiveError& error) {
    EXPECT_NE(std::string(error.what()).find("valid objectives"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("pause_max"), std::string::npos);
  }
}

TEST(ObjectiveFactory, RejectsParametersOnNonComposite) {
  EXPECT_THROW(make_objective("run_time:penalty=3"), ObjectiveError);
  EXPECT_THROW(make_objective("pause_max:pause_limit_ms=10"), ObjectiveError);
}

TEST(ObjectiveFactory, RejectsUnknownOrMalformedParameters) {
  EXPECT_THROW(make_objective("composite:limit=10"), ObjectiveError);
  EXPECT_THROW(make_objective("composite:penalty=abc"), ObjectiveError);
}

TEST(ObjectiveFactory, ListsSixBuiltins) {
  const std::vector<std::string> lines = list_objectives();
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines.front().find("run_time"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scalarization semantics

TEST(ObjectiveValues, CrashedMeasurementIsInfinitelyBadForEveryObjective) {
  Measurement m = make_measurement({make_rep(100, 50, 10, 5, 8, 64)});
  m.crashed = true;
  for (const auto& objective : all_builtins()) {
    EXPECT_TRUE(std::isinf(m.objective(*objective)))
        << objective->id() << " must treat a crash as +inf";
    EXPECT_GT(m.objective(*objective), 0) << objective->id();
  }
}

TEST(ObjectiveValues, EmptyMeasurementIsInfinitelyBadForEveryObjective) {
  const Measurement empty;
  for (const auto& objective : all_builtins()) {
    EXPECT_TRUE(std::isinf(empty.objective(*objective))) << objective->id();
  }
}

TEST(ObjectiveValues, SingleRepetitionScalarizesToItsOwnValue) {
  const Measurement m = make_measurement({make_rep(123.5, 60, 8, 4, 7, 96)});
  EXPECT_DOUBLE_EQ(m.objective(*make_objective("run_time")), 123.5);
  EXPECT_DOUBLE_EQ(m.objective(*make_objective("startup_time")), 60);
  EXPECT_DOUBLE_EQ(m.objective(*make_objective("pause_max")), 4);
  EXPECT_DOUBLE_EQ(m.objective(*make_objective("footprint")), 96);
}

TEST(ObjectiveValues, RunTimeMatchesLegacyObjectiveBitForBit) {
  const Measurement m = make_measurement({make_rep(101.25, 50, 10, 5, 8, 64),
                                          make_rep(99.75, 48, 11, 4, 7, 63),
                                          make_rep(100.5, 49, 10, 6, 9, 65)});
  EXPECT_EQ(m.objective(run_time_objective()), m.objective());
  EXPECT_EQ(m.objective(*make_objective("run_time")), m.objective());
}

TEST(ObjectiveValues, ThroughputNegationOrdersMoreWorkLower) {
  const Measurement fast = make_measurement({make_rep(100, 50, 20, 5, 8, 64)});
  const Measurement slow = make_measurement({make_rep(100, 50, 10, 5, 8, 64)});
  const auto throughput = make_objective("throughput");
  // 20 work/s beats 10 work/s: the negated scalar must be smaller.
  EXPECT_LT(fast.objective(*throughput), slow.objective(*throughput));
  EXPECT_DOUBLE_EQ(fast.objective(*throughput), -20.0);
  EXPECT_FALSE(throughput->positive_scale());
}

TEST(ObjectiveValues, CompositePenaltyIsMonotoneInTheViolation) {
  const auto composite =
      make_objective("composite:pause_limit_ms=50,penalty=10");
  const MetricVector inside = make_rep(1000, 0, 0, 30, 0, 0);
  const MetricVector at_limit = make_rep(1000, 0, 0, 50, 0, 0);
  const MetricVector over = make_rep(1000, 0, 0, 60, 0, 0);
  const MetricVector far_over = make_rep(1000, 0, 0, 80, 0, 0);
  // Inside the limit the composite *is* the run time.
  EXPECT_DOUBLE_EQ(composite->rep_value(inside), 1000.0);
  EXPECT_DOUBLE_EQ(composite->rep_value(at_limit), 1000.0);
  // Beyond it, every ms of pause costs `penalty` ms, monotonically.
  EXPECT_DOUBLE_EQ(composite->rep_value(over), 1000.0 + 10.0 * 10.0);
  EXPECT_LT(composite->rep_value(over), composite->rep_value(far_over));
}

TEST(ObjectiveValues, FallsBackToRunTimesWithoutAlignedMetricRows) {
  Measurement m = make_measurement({make_rep(100, 50, 10, 5, 8, 64),
                                    make_rep(102, 51, 10, 6, 9, 65)});
  m.rep_metrics.clear();  // e.g. a measurement replayed from an old journal
  const auto pause = make_objective("pause_max");
  EXPECT_EQ(pause->rep_values(m), m.times_ms);
  EXPECT_DOUBLE_EQ(m.objective(*pause), m.objective());
}

// ---------------------------------------------------------------------------
// Convergence on negated scalars (throughput streams have negative means)

TEST(MeasurementPolicyObjectives, ConvergesOnTightNegativeSamples) {
  MeasurementPolicyOptions options;
  options.adaptive = true;
  RunningStat negative;
  RunningStat positive;
  for (double x : {100.0, 100.2, 99.8, 100.1}) {
    positive.add(x);
    negative.add(-x);
  }
  MeasurementPolicy policy(options, IncumbentSnapshot{});
  // The CI test scales by |mean|, so a mirrored stream decides identically.
  EXPECT_EQ(policy.after_rep(negative), policy.after_rep(positive));
  EXPECT_EQ(policy.after_rep(negative),
            MeasurementPolicy::Decision::kConverged);
}

// ---------------------------------------------------------------------------
// RunResult::throughput crash clamp

TEST(RunResultThroughput, CrashedRunsReportZeroEvenWithPartialWork) {
  RunResult run;
  run.total_time = SimTime::seconds(10);
  run.work_done = 500;
  EXPECT_DOUBLE_EQ(run.throughput(), 50.0);
  run.crashed = true;  // partial work before dying must not be credited
  EXPECT_DOUBLE_EQ(run.throughput(), 0.0);
}

// ---------------------------------------------------------------------------
// Unknown-label surfacing (fault/stop readers)

TEST(LabelReaders, ReportWhetherTheLabelWasKnown) {
  bool known = false;
  EXPECT_EQ(fault_class_from_string("transient", &known),
            FaultClass::kTransient);
  EXPECT_TRUE(known);
  EXPECT_EQ(fault_class_from_string("none", &known), FaultClass::kNone);
  EXPECT_TRUE(known);
  EXPECT_EQ(fault_class_from_string("gremlin", &known), FaultClass::kNone);
  EXPECT_FALSE(known);

  EXPECT_EQ(stop_reason_from_string("raced_out", &known),
            StopReason::kRacedOut);
  EXPECT_TRUE(known);
  EXPECT_EQ(stop_reason_from_string("full", &known), StopReason::kFull);
  EXPECT_TRUE(known);
  EXPECT_EQ(stop_reason_from_string("exploded", &known), StopReason::kFull);
  EXPECT_FALSE(known);
}

TEST(LabelReaders, JournalSurfacesUnknownLabelsAsStructuredWarnings) {
  set_log_level(LogLevel::kError);
  const std::string path = temp_path("unknown_labels.jsonl");
  {
    SessionJournal journal = SessionJournal::create(path);
    JournalMeta meta;
    meta.workload = "w";
    meta.tuner = "t";
    journal.write_meta(meta);
    JournalEval eval;
    eval.seq = 0;
    eval.fingerprint = 42;
    eval.times_ms = {100.0};
    journal.append(eval);
  }
  // Forge a future-version record: swap the fault and stop labels for ones
  // this build does not know, recomputing the content checksum so the line
  // still reads as valid (a corrupt line would be *dropped*, which is the
  // other, already-tested path).
  std::istringstream in(slurp(path));
  std::string meta_line;
  std::string eval_line;
  std::getline(in, meta_line);
  std::getline(in, eval_line);
  std::string body = eval_line.substr(0, eval_line.size() - 26) + "}";
  auto replace = [&](const std::string& from, const std::string& to) {
    const std::size_t at = body.find(from);
    ASSERT_NE(at, std::string::npos) << body;
    body.replace(at, from.size(), to);
  };
  replace("\"fault\":\"none\"", "\"fault\":\"gremlin\"");
  replace("\"stop\":\"full\"", "\"stop\":\"warped\"");
  char crc[32];
  std::snprintf(crc, sizeof crc, ",\"crc\":\"%016llx\"}",
                static_cast<unsigned long long>(fnv1a64(body)));
  body.pop_back();
  spit(path, meta_line + "\n" + body + crc + "\n");

  SessionJournal reread = SessionJournal::resume(path);
  ASSERT_EQ(reread.committed().size(), 1u);
  EXPECT_EQ(reread.dropped_records(), 0u);
  // The labels read as clean — but never silently.
  EXPECT_EQ(reread.committed()[0].fault, FaultClass::kNone);
  EXPECT_EQ(reread.committed()[0].stop, StopReason::kFull);
  ASSERT_EQ(reread.warnings().size(), 2u);
  EXPECT_EQ(reread.warnings()[0].field, "fault");
  EXPECT_EQ(reread.warnings()[0].value, "gremlin");
  EXPECT_EQ(reread.warnings()[1].field, "stop");
  EXPECT_EQ(reread.warnings()[1].value, "warped");
  set_log_level(LogLevel::kWarn);
}

// ---------------------------------------------------------------------------
// Runner metric rows

TEST(RunnerMetrics, RecordsOneAlignedRowPerRepetition) {
  JvmSimulator simulator;
  RunnerOptions options;
  options.repetitions = 3;
  BenchmarkRunner runner(simulator, find_workload("startup.serial"), options);
  const Measurement m = runner.measure(Configuration(FlagRegistry::hotspot()));
  ASSERT_TRUE(m.valid());
  ASSERT_EQ(m.rep_metrics.size(), m.times_ms.size());
  for (std::size_t i = 0; i < m.times_ms.size(); ++i) {
    // The invariant every objective builds on: the first metric column *is*
    // the canonical run-time stream, bit for bit.
    EXPECT_EQ(m.rep_metrics[i][MetricId::kTotalTimeMs], m.times_ms[i]);
    EXPECT_GT(m.rep_metrics[i][MetricId::kThroughput], 0);
    EXPECT_GT(m.rep_metrics[i][MetricId::kPeakHeapMb], 0);
    EXPECT_GE(m.rep_metrics[i][MetricId::kGcPauseMaxMs], 0);
    EXPECT_LE(m.rep_metrics[i][MetricId::kGcPauseMaxMs],
              m.rep_metrics[i][MetricId::kGcPauseTotalMs] + 1e-9);
    EXPECT_LT(m.rep_metrics[i][MetricId::kStartupTimeMs], m.times_ms[i]);
  }
  EXPECT_EQ(m.objective(run_time_objective()), m.objective());
}

// ---------------------------------------------------------------------------
// Session-level contracts

SessionOptions golden_session_options() {
  SessionOptions options;
  options.budget = SimTime::minutes(20);
  options.seed = 7;
  return options;
}

TEST(SessionObjectives, RunTimeLogIsByteIdenticalToThePreObjectiveGolden) {
  set_log_level(LogLevel::kError);
  JvmSimulator simulator;
  TuningSession session(simulator, find_workload("startup.serial"),
                        golden_session_options());
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  EXPECT_EQ(outcome.objective_id, "run_time");

  const std::string csv_path = temp_path("golden_check.csv");
  ASSERT_TRUE(outcome.db->save_csv(csv_path));
  const std::string golden = slurp(std::string(JAT_GOLDEN_DIR) +
                                   "/run_time_eval_log.csv");
  ASSERT_FALSE(golden.empty());
  // Byte-for-byte: the objective refactor must not move a single digit of
  // the default run_time trajectory.
  EXPECT_EQ(slurp(csv_path), golden);
  set_log_level(LogLevel::kWarn);
}

TEST(SessionObjectives, ExplicitRunTimeObjectiveIsTheDefaultBitForBit) {
  set_log_level(LogLevel::kError);
  JvmSimulator simulator;
  const WorkloadSpec& workload = find_workload("startup.serial");

  SessionOptions defaulted = golden_session_options();
  SessionOptions explicit_obj = golden_session_options();
  explicit_obj.objective = make_objective("run_time");

  HierarchicalTuner tuner_a;
  HierarchicalTuner tuner_b;
  const TuningOutcome a =
      TuningSession(simulator, workload, defaulted).run(tuner_a);
  const TuningOutcome b =
      TuningSession(simulator, workload, explicit_obj).run(tuner_b);
  EXPECT_EQ(a.best_config.fingerprint(), b.best_config.fingerprint());
  EXPECT_EQ(a.best_ms, b.best_ms);
  EXPECT_EQ(a.default_ms, b.default_ms);

  const std::string path_a = temp_path("default.csv");
  const std::string path_b = temp_path("explicit.csv");
  ASSERT_TRUE(a.db->save_csv(path_a));
  ASSERT_TRUE(b.db->save_csv(path_b));
  EXPECT_EQ(slurp(path_a), slurp(path_b));
  set_log_level(LogLevel::kWarn);
}

TEST(SessionObjectives, TrajectoryIsThreadCountInvariantUnderAnyObjective) {
  set_log_level(LogLevel::kError);
  JvmSimulator simulator;
  const WorkloadSpec& workload = find_workload("startup.serial");
  for (const char* spec : {"run_time", "pause_max"}) {
    SessionOptions base = golden_session_options();
    base.objective = make_objective(spec);
    DeterminismMatrix matrix;
    matrix.cases = {{.eval_threads = 4}};
    run_determinism_matrix(
        simulator, workload, base,
        [] { return std::make_unique<HierarchicalTuner>(); }, matrix, spec);
  }
  set_log_level(LogLevel::kWarn);
}

TEST(SessionObjectives, PauseMaxSessionWritesTheExtendedSchema) {
  set_log_level(LogLevel::kError);
  JvmSimulator simulator;
  SessionOptions options = golden_session_options();
  options.budget = SimTime::minutes(5);
  options.objective = make_objective("pause_max");
  const std::string journal_path = temp_path("pause.jsonl");
  SessionJournal journal = SessionJournal::create(journal_path);
  options.journal = &journal;
  TuningSession session(simulator, find_workload("startup.serial"), options);
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  EXPECT_EQ(outcome.objective_id, "pause_max");
  EXPECT_TRUE(std::isfinite(outcome.best_ms));

  const std::string csv_path = temp_path("pause.csv");
  ASSERT_TRUE(outcome.db->save_csv(csv_path));
  const std::string csv = slurp(csv_path);
  EXPECT_NE(csv.find("objective,objective_value"), std::string::npos);
  EXPECT_NE(csv.find("gc_pause_max_ms"), std::string::npos);
  EXPECT_NE(csv.find(",pause_max,"), std::string::npos);

  journal.flush();
  const std::string journaled = slurp(journal_path);
  // Non-run_time sessions bump the journal to version 2 and pin the
  // objective id + per-record metric vectors for bit-identical resume.
  EXPECT_NE(journaled.find("\"version\":2"), std::string::npos);
  EXPECT_NE(journaled.find("\"objective\":\"pause_max\""), std::string::npos);
  EXPECT_NE(journaled.find("\"metrics\":"), std::string::npos);
  set_log_level(LogLevel::kWarn);
}

TEST(SessionObjectives, RunTimeJournalStaysVersionOneWithoutObjectiveField) {
  JvmSimulator simulator;
  TuningSession session(simulator, find_workload("startup.serial"),
                        golden_session_options());
  const JournalMeta meta = session.journal_meta("hierarchical");
  EXPECT_EQ(meta.version, SessionJournal::kVersion);
  EXPECT_EQ(meta.objective, "run_time");
  EXPECT_EQ(SessionJournal::version_for_objective("run_time"),
            SessionJournal::kVersion);
  EXPECT_EQ(SessionJournal::version_for_objective("pause_max"),
            SessionJournal::kVersionObjectives);
}

// ---------------------------------------------------------------------------
// Suite sessions and negated objectives

TEST(SuiteObjectives, RejectsNegatedObjectives) {
  JvmSimulator simulator;
  RunnerOptions options;
  options.objective = make_objective("throughput");
  const std::vector<WorkloadSpec> suite = {find_workload("startup.serial"),
                                           find_workload("startup.compress")};
  EXPECT_THROW(SuiteRunner(simulator, suite, options), ObjectiveError);
}

TEST(SuiteObjectives, RejectsDefaultsTheObjectiveCannotNormaliseBy) {
  JvmSimulator simulator;
  RunnerOptions options;
  options.objective = make_objective("pause_max");
  // startup.compress allocates so little that the defaults never pause:
  // a zero default makes the value/default ratio meaningless, and the
  // suite must say so up front instead of dividing by it.
  const std::vector<WorkloadSpec> suite = {find_workload("startup.compress")};
  EXPECT_THROW(SuiteRunner(simulator, suite, options), ObjectiveError);
}

TEST(SuiteObjectives, ScoresMembersWithThePositiveScaleObjective) {
  JvmSimulator simulator;
  RunnerOptions options;
  options.objective = make_objective("pause_max");
  const std::vector<WorkloadSpec> suite = {find_workload("startup.serial"),
                                           find_workload("lusearch")};
  SuiteRunner runner(simulator, suite, options);
  // The defaults normalise to exactly 1000 under *any* member objective.
  const Measurement defaults =
      runner.measure(Configuration(FlagRegistry::hotspot()));
  ASSERT_TRUE(defaults.valid());
  EXPECT_NEAR(defaults.times_ms[0], 1000.0, 1e-9);
  for (double value : runner.default_times_ms()) {
    EXPECT_GT(value, 0);
    EXPECT_TRUE(std::isfinite(value));
  }
}

}  // namespace
}  // namespace jat
