#include "jvmsim/params.hpp"

#include <gtest/gtest.h>

#include "support/units.hpp"

namespace jat {
namespace {

class ParamsTest : public ::testing::Test {
 protected:
  Configuration config_{FlagRegistry::hotspot()};
};

TEST_F(ParamsTest, DefaultDecode) {
  const JvmParams p = decode_params(config_);
  EXPECT_EQ(p.gc.algorithm, GcAlgorithm::kParallel);
  EXPECT_EQ(p.heap.max_heap, kGiB);
  EXPECT_TRUE(p.jit.tiered);
  EXPECT_FALSE(p.jit.interpret_only);
  EXPECT_FALSE(p.jit.client_vm);
  EXPECT_TRUE(p.runtime.biased_locking);
  EXPECT_TRUE(p.gc.pause_goal.is_infinite());  // no goal for throughput GC
}

TEST_F(ParamsTest, GcSelection) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseSerialGC", true);
  EXPECT_EQ(decode_params(config_).gc.algorithm, GcAlgorithm::kSerial);

  config_.set_bool("UseSerialGC", false);
  config_.set_bool("UseConcMarkSweepGC", true);
  EXPECT_EQ(decode_params(config_).gc.algorithm, GcAlgorithm::kCms);

  config_.set_bool("UseConcMarkSweepGC", false);
  config_.set_bool("UseG1GC", true);
  EXPECT_EQ(decode_params(config_).gc.algorithm, GcAlgorithm::kG1);
}

TEST_F(ParamsTest, NoCollectorSelectedFallsBackToParallel) {
  config_.set_bool("UseParallelGC", false);
  EXPECT_EQ(decode_params(config_).gc.algorithm, GcAlgorithm::kParallel);
}

TEST_F(ParamsTest, SerialGcForcesSingleStwThread) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseSerialGC", true);
  config_.set_int("ParallelGCThreads", 16);
  EXPECT_EQ(decode_params(config_).gc.stw_threads, 1);
}

TEST_F(ParamsTest, CmsWithoutParNewCollectsYoungSingleThreaded) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseConcMarkSweepGC", true);
  config_.set_bool("UseParNewGC", false);
  EXPECT_EQ(decode_params(config_).gc.stw_threads, 1);
  config_.set_bool("UseParNewGC", true);
  EXPECT_GT(decode_params(config_).gc.stw_threads, 1);
}

TEST_F(ParamsTest, G1GetsDefaultPauseGoal) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseG1GC", true);
  EXPECT_EQ(decode_params(config_).gc.pause_goal, SimTime::millis(200));
  config_.set_int("MaxGCPauseMillis", 50);
  EXPECT_EQ(decode_params(config_).gc.pause_goal, SimTime::millis(50));
}

TEST_F(ParamsTest, YoungSizeErgonomics) {
  const JvmParams p = decode_params(config_);
  // NewRatio 2 over a 1 GiB heap: max young = heap/3.
  EXPECT_EQ(p.heap.max_young_size, kGiB / 3);
  // Initial young starts below the bound (staged growth).
  EXPECT_LT(p.heap.young_size, p.heap.max_young_size);
  EXPECT_GT(p.heap.young_size, 0);
}

TEST_F(ParamsTest, ExplicitNewSizeWins) {
  config_.set_int("NewSize", 300 * kMiB);
  const JvmParams p = decode_params(config_);
  EXPECT_EQ(p.heap.young_size, 300 * kMiB);
}

TEST_F(ParamsTest, MaxNewSizeOverridesNewRatio) {
  config_.set_int("MaxNewSize", 100 * kMiB);
  EXPECT_EQ(decode_params(config_).heap.max_young_size, 100 * kMiB);
}

TEST_F(ParamsTest, InitialHeapClampedToMax) {
  config_.set_int("MaxHeapSize", 7 * kGiB);  // keep startable
  config_.set_int("InitialHeapSize", 4 * kGiB);
  const JvmParams p = decode_params(config_);
  EXPECT_LE(p.heap.initial_heap, p.heap.max_heap);
}

TEST_F(ParamsTest, ExecutionModes) {
  config_.set_enum("ExecutionMode", "int");
  EXPECT_TRUE(decode_params(config_).jit.interpret_only);
  config_.set_enum("ExecutionMode", "comp");
  const JvmParams p = decode_params(config_);
  EXPECT_TRUE(p.jit.compile_all);
  EXPECT_FALSE(p.jit.interpret_only);
}

TEST_F(ParamsTest, ClientVmDisablesTiered) {
  config_.set_enum("VMMode", "client");
  const JvmParams p = decode_params(config_);
  EXPECT_TRUE(p.jit.client_vm);
  EXPECT_FALSE(p.jit.tiered);
}

TEST_F(ParamsTest, NonTieredForcesStopLevelFour) {
  config_.set_bool("TieredCompilation", false);
  config_.set_int("TieredStopAtLevel", 1);
  EXPECT_EQ(decode_params(config_).jit.stop_at_level, 4);
}

TEST_F(ParamsTest, MoreInliningRaisesQualityThenPlateaus) {
  const double base = decode_params(config_).jit.c2_quality;
  config_.set_int("MaxInlineSize", 120);
  const double more = decode_params(config_).jit.c2_quality;
  EXPECT_GT(more, base);
  config_.set_int("MaxInlineSize", 500);
  const double extreme = decode_params(config_).jit.c2_quality;
  EXPECT_LT(extreme, more);  // icache pressure eats the gains
}

TEST_F(ParamsTest, InliningBloatsCode) {
  const double base = decode_params(config_).jit.code_bloat;
  config_.set_int("MaxInlineSize", 400);
  EXPECT_GT(decode_params(config_).jit.code_bloat, base);
}

TEST_F(ParamsTest, EscapeAnalysisElidesAllocationAndLocks) {
  JvmParams with = decode_params(config_);
  EXPECT_GT(with.jit.alloc_elision, 0.0);
  EXPECT_GT(with.jit.lock_elision, 0.0);
  config_.set_bool("DoEscapeAnalysis", false);
  JvmParams without = decode_params(config_);
  EXPECT_EQ(without.jit.alloc_elision, 0.0);
  EXPECT_EQ(without.jit.lock_elision, 0.0);
}

TEST_F(ParamsTest, CryptoIntrinsicsRaiseCryptoSpeed) {
  const double with = decode_params(config_).jit.crypto_speed;
  config_.set_bool("UseAESIntrinsics", false);
  const double without = decode_params(config_).jit.crypto_speed;
  EXPECT_GT(with, without);
  EXPECT_GE(without, 1.0);
}

TEST_F(ParamsTest, SuperWordRaisesVectorQuality) {
  const double with = decode_params(config_).jit.vector_quality;
  config_.set_bool("UseSuperWord", false);
  const double without = decode_params(config_).jit.vector_quality;
  EXPECT_GT(with, without);
}

TEST_F(ParamsTest, InterpreterFastPathFlags) {
  const double base = decode_params(config_).jit.interpreter_quality;
  config_.set_bool("RewriteBytecodes", false);
  const double slower = decode_params(config_).jit.interpreter_quality;
  EXPECT_LT(slower, base);
}

TEST_F(ParamsTest, SafepointIntervalZeroMeansNever) {
  config_.set_int("GuaranteedSafepointInterval", 0);
  EXPECT_TRUE(decode_params(config_).runtime.safepoint_interval.is_infinite());
  config_.set_int("GuaranteedSafepointInterval", 500);
  EXPECT_EQ(decode_params(config_).runtime.safepoint_interval, SimTime::millis(500));
}

TEST_F(ParamsTest, GcAlgorithmNames) {
  EXPECT_STREQ(to_string(GcAlgorithm::kSerial), "serial");
  EXPECT_STREQ(to_string(GcAlgorithm::kParallel), "parallel");
  EXPECT_STREQ(to_string(GcAlgorithm::kCms), "cms");
  EXPECT_STREQ(to_string(GcAlgorithm::kG1), "g1");
}

}  // namespace
}  // namespace jat
