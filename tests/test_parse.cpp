#include "flags/parse.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "flags/hierarchy.hpp"
#include "support/rng.hpp"

#include "support/error.hpp"
#include "support/units.hpp"

namespace jat {
namespace {

class ParseTest : public ::testing::Test {
 protected:
  const FlagRegistry& reg_ = FlagRegistry::hotspot();
  Configuration config_{FlagRegistry::hotspot()};
};

TEST_F(ParseTest, BooleanPlusMinusSyntax) {
  apply_option(config_, "-XX:+UseG1GC");
  EXPECT_TRUE(config_.get_bool("UseG1GC"));
  apply_option(config_, "-XX:-UseParallelGC");
  EXPECT_FALSE(config_.get_bool("UseParallelGC"));
}

TEST_F(ParseTest, AssignmentSyntaxForEveryType) {
  apply_option(config_, "-XX:NewRatio=5");
  EXPECT_EQ(config_.get_int("NewRatio"), 5);
  apply_option(config_, "-XX:MaxHeapSize=512m");
  EXPECT_EQ(config_.get_int("MaxHeapSize"), 512 * kMiB);
  apply_option(config_, "-XX:CMSSmallCoalSurplusPercent=1.5");
  EXPECT_DOUBLE_EQ(config_.get_double("CMSSmallCoalSurplusPercent"), 1.5);
  apply_option(config_, "-XX:VMMode=client");
  EXPECT_EQ(config_.get_enum("VMMode"), "client");
  apply_option(config_, "-XX:UseBiasedLocking=false");
  EXPECT_FALSE(config_.get_bool("UseBiasedLocking"));
}

TEST_F(ParseTest, LauncherAliases) {
  apply_option(config_, "-client");
  EXPECT_EQ(config_.get_enum("VMMode"), "client");
  apply_option(config_, "-Xint");
  EXPECT_EQ(config_.get_enum("ExecutionMode"), "int");
  apply_option(config_, "-Xmx2g");
  EXPECT_EQ(config_.get_int("MaxHeapSize"), 2 * kGiB);
  apply_option(config_, "-Xms256m");
  EXPECT_EQ(config_.get_int("InitialHeapSize"), 256 * kMiB);
  apply_option(config_, "-Xmn128m");
  EXPECT_EQ(config_.get_int("NewSize"), 128 * kMiB);
  EXPECT_EQ(config_.get_int("MaxNewSize"), 128 * kMiB);
  apply_option(config_, "-Xss2048k");
  EXPECT_EQ(config_.get_int("ThreadStackSize"), 2048);
  apply_option(config_, "-Xbatch");
  EXPECT_FALSE(config_.get_bool("BackgroundCompilation"));
  apply_option(config_, "-Xverify:none");
  EXPECT_FALSE(config_.get_bool("BytecodeVerificationRemote"));
  apply_option(config_, "-Xshare:off");
  EXPECT_FALSE(config_.get_bool("UseSharedSpaces"));
}

TEST_F(ParseTest, RejectsMalformedOptions) {
  EXPECT_THROW(apply_option(config_, "-XX:"), FlagError);
  EXPECT_THROW(apply_option(config_, "-XX:NoSuchFlag=1"), FlagError);
  EXPECT_THROW(apply_option(config_, "-XX:+MaxHeapSize"), FlagError);
  EXPECT_THROW(apply_option(config_, "-XX:NewRatio"), FlagError);
  EXPECT_THROW(apply_option(config_, "-XX:NewRatio=abc"), FlagError);
  EXPECT_THROW(apply_option(config_, "-XX:UseG1GC=maybe"), FlagError);
  EXPECT_THROW(apply_option(config_, "--weird"), FlagError);
  EXPECT_THROW(apply_option(config_, "-XX:VMMode=turbo"), FlagError);
}

TEST_F(ParseTest, RejectsOutOfDomainValues) {
  EXPECT_THROW(apply_option(config_, "-XX:MaxTenuringThreshold=99"), FlagError);
}

TEST_F(ParseTest, TokenizerSplitsOnWhitespace) {
  const auto tokens = tokenize_command_line("  -XX:+UseG1GC\t-Xmx2g \n -server ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "-XX:+UseG1GC");
  EXPECT_EQ(tokens[2], "-server");
}

TEST_F(ParseTest, ParseCommandLineRoundTripsRender) {
  Configuration original(reg_);
  original.set_bool("UseG1GC", true);
  original.set_bool("UseParallelGC", false);
  original.set_int("MaxHeapSize", 2 * kGiB);
  original.set_int("NewRatio", 4);
  original.set_enum("ExecutionMode", "comp");
  original.set_int("Tier3InvocationThreshold", 50);

  const Configuration parsed =
      parse_command_line(reg_, original.render_command_line());
  EXPECT_EQ(parsed, original);
  EXPECT_EQ(parsed.fingerprint(), original.fingerprint());
}

TEST_F(ParseTest, EmptyCommandLineYieldsDefaults) {
  const Configuration parsed = parse_command_line(reg_, "   ");
  EXPECT_TRUE(parsed.changed_flags().empty());
}

TEST_F(ParseTest, SaveAndLoadConfigurationFile) {
  Configuration original(reg_);
  original.set_bool("UseConcMarkSweepGC", true);
  original.set_bool("UseParNewGC", true);
  original.set_bool("UseParallelGC", false);
  original.set_int("CMSInitiatingOccupancyFraction", 55);

  const std::string path = ::testing::TempDir() + "/jat_config_test.flags";
  ASSERT_TRUE(save_configuration(original, path));
  const Configuration loaded = load_configuration(reg_, path);
  EXPECT_EQ(loaded, original);
}

TEST_F(ParseTest, LoadIgnoresCommentsAndBlankLines) {
  const std::string path = ::testing::TempDir() + "/jat_config_comments.flags";
  {
    std::ofstream out(path);
    out << "# a tuned config\n\n-XX:+UseSerialGC  # inline comment\n"
        << "-XX:-UseParallelGC\n";
  }
  const Configuration loaded = load_configuration(reg_, path);
  EXPECT_TRUE(loaded.get_bool("UseSerialGC"));
  EXPECT_FALSE(loaded.get_bool("UseParallelGC"));
}

TEST_F(ParseTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_configuration(reg_, "/nonexistent/path.flags"), Error);
}

// Property: render -> parse round-trips for random configurations.
class ParseRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParseRoundTrip, RandomConfigurationsRoundTrip) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  // Use search-space sampling to build arbitrary-but-valid configurations.
  const FlagHierarchy& h = FlagHierarchy::hotspot();
  Rng rng(GetParam());
  Configuration original(reg);
  for (const auto& group : h.groups()) {
    group.apply(original, rng.next_below(group.options.size()));
  }
  for (int i = 0; i < 40; ++i) {
    const FlagId id = static_cast<FlagId>(rng.next_below(reg.size()));
    const FlagSpec& spec = reg.spec(id);
    switch (spec.type) {
      case FlagType::kBool:
        original.set(id, FlagValue(rng.chance(0.5)));
        break;
      case FlagType::kInt:
      case FlagType::kSize:
        original.set(id, FlagValue(rng.uniform_i64(spec.int_domain.lo,
                                                   spec.int_domain.hi)));
        break;
      case FlagType::kDouble:
        original.set(id, FlagValue(rng.uniform(spec.double_domain.lo,
                                               spec.double_domain.hi)));
        break;
      case FlagType::kEnum:
        original.set(id, FlagValue(spec.choices[rng.next_below(spec.choices.size())]));
        break;
    }
  }
  const Configuration parsed =
      parse_command_line(reg, original.render_command_line());
  EXPECT_EQ(parsed, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace jat
