#include <gtest/gtest.h>

#include <cmath>

#include "harness/runner.hpp"
#include "support/log.hpp"
#include "tuner/search_space.hpp"
#include "tuner/session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

WorkloadSpec racing_workload() {
  WorkloadSpec w;
  w.name = "racing-test";
  w.total_work = 400;
  w.startup_work = 80;
  w.startup_classes = 1000;
  w.noise_sigma = 0.01;
  return w;
}

class RacingTest : public ::testing::Test {
 protected:
  RacingTest() { set_log_level(LogLevel::kWarn); }
  JvmSimulator sim_;

  BenchmarkRunner make_runner(double racing_factor) {
    RunnerOptions options;
    options.repetitions = 3;
    options.racing_factor = racing_factor;
    return BenchmarkRunner(sim_, racing_workload(), options);
  }
};

TEST_F(RacingTest, DisabledByDefaultRunsAllRepetitions) {
  BenchmarkRunner runner = make_runner(0.0);
  Configuration slow(FlagRegistry::hotspot());
  slow.set_enum("ExecutionMode", "int");
  runner.measure(Configuration(FlagRegistry::hotspot()));
  const Measurement m = runner.measure(slow);
  EXPECT_EQ(m.times_ms.size(), 3u);
  EXPECT_EQ(m.stop, StopReason::kFull);
}

TEST_F(RacingTest, AbandonsClearLosersAfterOneRep) {
  BenchmarkRunner runner = make_runner(1.3);
  // Establish the reference with the defaults.
  const Measurement base = runner.measure(Configuration(FlagRegistry::hotspot()));
  ASSERT_EQ(base.times_ms.size(), 3u);

  Configuration slow(FlagRegistry::hotspot());
  slow.set_enum("ExecutionMode", "int");  // several times slower
  const Measurement m = runner.measure(slow);
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(m.times_ms.size(), 1u);  // raced out
  EXPECT_EQ(m.stop, StopReason::kRacedOut);
  EXPECT_GT(m.objective(), base.objective());
}

TEST_F(RacingTest, KeepsCompetitiveCandidatesAtFullRepetitions) {
  BenchmarkRunner runner = make_runner(1.3);
  runner.measure(Configuration(FlagRegistry::hotspot()));
  Configuration similar(FlagRegistry::hotspot());
  similar.set_int("NewRatio", 3);  // near-identical performance
  const Measurement m = runner.measure(similar);
  EXPECT_EQ(m.times_ms.size(), 3u);
}

TEST_F(RacingTest, RacingSavesRunsAtEqualEvaluationCount) {
  BenchmarkRunner plain = make_runner(0.0);
  BenchmarkRunner racing = make_runner(1.3);
  const SearchSpace space(FlagHierarchy::hotspot());
  Rng rng(11);
  std::vector<Configuration> candidates;
  candidates.emplace_back(FlagRegistry::hotspot());
  for (int i = 0; i < 30; ++i) {
    candidates.push_back(space.random_config(rng, 0.3));
  }
  for (const auto& c : candidates) {
    plain.measure(c);
    racing.measure(c);
  }
  EXPECT_LT(racing.runs_executed(), plain.runs_executed());
}

TEST_F(RacingTest, SessionWithRacingStillValidatesHonestly) {
  SessionOptions options;
  options.budget = SimTime::minutes(20);
  options.repetitions = 3;
  options.racing_factor = 1.3;
  TuningSession session(sim_, racing_workload(), options);
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  EXPECT_TRUE(std::isfinite(outcome.best_ms));
  EXPECT_LE(outcome.best_ms, outcome.default_ms);
  EXPECT_GE(outcome.improvement_frac(), 0.0);
}

}  // namespace
}  // namespace jat
