#include "flags/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace jat {
namespace {

FlagSpec make_bool(const char* name, bool def = false) {
  FlagSpec s;
  s.name = name;
  s.type = FlagType::kBool;
  s.default_value = FlagValue(def);
  return s;
}

TEST(FlagRegistry, RejectsDuplicateNames) {
  EXPECT_THROW(FlagRegistry({make_bool("A"), make_bool("A")}), FlagError);
}

TEST(FlagRegistry, RejectsUnnamedFlag) {
  FlagSpec s = make_bool("");
  EXPECT_THROW(FlagRegistry({s}), FlagError);
}

TEST(FlagRegistry, RejectsDefaultOutOfDomain) {
  FlagSpec s;
  s.name = "Bad";
  s.type = FlagType::kInt;
  s.default_value = FlagValue(std::int64_t{100});
  s.int_domain = {0, 10, false, 1};
  EXPECT_THROW(FlagRegistry({s}), FlagError);
}

TEST(FlagRegistry, FindAndRequire) {
  FlagRegistry reg({make_bool("X"), make_bool("Y")});
  EXPECT_EQ(reg.find("X"), 0u);
  EXPECT_EQ(reg.find("Y"), 1u);
  EXPECT_EQ(reg.find("Z"), kInvalidFlag);
  EXPECT_EQ(reg.require("Y"), 1u);
  EXPECT_THROW(reg.require("Z"), FlagError);
}

TEST(HotspotCatalog, HasAtLeast600Flags) {
  // The paper: "the Hot Spot JVM comes with over 600 flags".
  EXPECT_GE(FlagRegistry::hotspot().size(), 600u);
}

TEST(HotspotCatalog, AllNamesUnique) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  std::set<std::string> names;
  for (FlagId id = 0; id < reg.size(); ++id) {
    EXPECT_TRUE(names.insert(reg.spec(id).name).second)
        << "duplicate: " << reg.spec(id).name;
  }
}

TEST(HotspotCatalog, WellKnownFlagsPresentWithSaneDefaults) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  const auto& max_heap = reg.spec(reg.require("MaxHeapSize"));
  EXPECT_EQ(max_heap.type, FlagType::kSize);
  EXPECT_EQ(max_heap.default_value.as_int(), std::int64_t{1} << 30);

  EXPECT_TRUE(reg.spec(reg.require("UseParallelGC")).default_value.as_bool());
  EXPECT_FALSE(reg.spec(reg.require("UseG1GC")).default_value.as_bool());
  EXPECT_FALSE(reg.spec(reg.require("UseSerialGC")).default_value.as_bool());
  EXPECT_FALSE(reg.spec(reg.require("UseConcMarkSweepGC")).default_value.as_bool());
  EXPECT_TRUE(reg.spec(reg.require("TieredCompilation")).default_value.as_bool());
  EXPECT_EQ(reg.spec(reg.require("CompileThreshold")).default_value.as_int(), 10000);
  EXPECT_EQ(reg.spec(reg.require("MaxTenuringThreshold")).default_value.as_int(), 15);
  EXPECT_EQ(reg.spec(reg.require("VMMode")).type, FlagType::kEnum);
}

TEST(HotspotCatalog, EveryDefaultInsideItsDomain) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  for (FlagId id = 0; id < reg.size(); ++id) {
    const FlagSpec& spec = reg.spec(id);
    EXPECT_TRUE(spec.in_domain(spec.default_value)) << spec.name;
  }
}

TEST(HotspotCatalog, EveryFlagHasDescription) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  for (FlagId id = 0; id < reg.size(); ++id) {
    EXPECT_FALSE(reg.spec(id).description.empty()) << reg.spec(id).name;
  }
}

TEST(HotspotCatalog, ImpactfulSubsetIsSubstantialButMinority) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  const auto impactful = reg.impactful();
  EXPECT_GE(impactful.size(), 100u);
  // Most of the catalog is the performance-inert long tail — the situation
  // the paper's hierarchy is designed for.
  EXPECT_LT(impactful.size(), reg.size() / 2);
}

TEST(HotspotCatalog, SubsystemQueriesPartitionTheCatalog) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  std::size_t total = 0;
  for (int s = 0; s <= static_cast<int>(Subsystem::kDiagnostic); ++s) {
    total += reg.by_subsystem(static_cast<Subsystem>(s)).size();
  }
  EXPECT_EQ(total, reg.size());
}

TEST(HotspotCatalog, CmsAndG1SubsystemsNonEmpty) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  EXPECT_GE(reg.by_subsystem(Subsystem::kGcCms).size(), 40u);
  EXPECT_GE(reg.by_subsystem(Subsystem::kGcG1).size(), 20u);
  EXPECT_GE(reg.by_subsystem(Subsystem::kCompiler).size(), 50u);
}

TEST(HotspotCatalog, SpaceSizeIsAstronomical) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  // Hundreds of orders of magnitude: the paper's point that exhaustive
  // search is hopeless.
  EXPECT_GT(reg.log10_space_size_all(), 200.0);
}

TEST(HotspotCatalog, SubsetSpaceSmallerThanFull) {
  const FlagRegistry& reg = FlagRegistry::hotspot();
  const auto impactful = reg.impactful();
  EXPECT_LT(reg.log10_space_size(impactful), reg.log10_space_size_all());
  EXPECT_GT(reg.log10_space_size(impactful), 0.0);
}

TEST(FlagSpecDomain, BoolCardinalityIsTwo) {
  FlagSpec s = make_bool("B");
  EXPECT_EQ(s.domain_cardinality(), 2.0);
}

TEST(FlagSpecDomain, IntCardinalityRespectsStep) {
  FlagSpec s;
  s.name = "I";
  s.type = FlagType::kInt;
  s.default_value = FlagValue(std::int64_t{0});
  s.int_domain = {0, 100, false, 10};
  EXPECT_EQ(s.domain_cardinality(), 11.0);
}

TEST(FlagSpecDomain, WideIntCardinalityClamped) {
  FlagSpec s;
  s.name = "W";
  s.type = FlagType::kSize;
  s.default_value = FlagValue(std::int64_t{0});
  s.int_domain = {0, std::int64_t{1} << 40, true, 1};
  EXPECT_EQ(s.domain_cardinality(), 1048576.0);
}

TEST(FlagSpecDomain, InDomainChecksTypeAndRange) {
  FlagSpec s;
  s.name = "E";
  s.type = FlagType::kEnum;
  s.choices = {"a", "b"};
  s.default_value = FlagValue(std::string("a"));
  EXPECT_TRUE(s.in_domain(FlagValue(std::string("b"))));
  EXPECT_FALSE(s.in_domain(FlagValue(std::string("c"))));
  EXPECT_FALSE(s.in_domain(FlagValue(true)));
}

}  // namespace
}  // namespace jat
