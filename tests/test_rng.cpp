#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace jat {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformI64InclusiveEndpoints) {
  Rng rng(3);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_i64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= v == -2;
    hi_seen |= v == 2;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformI64DegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_i64(5, 5), 5);
  EXPECT_EQ(rng.uniform_i64(9, 2), 9);  // inverted => lo
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShifted) {
  Rng rng(9);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> sample;
  for (int i = 0; i < 10001; ++i) sample.push_back(rng.lognormal_median(5.0, 0.3));
  std::nth_element(sample.begin(), sample.begin() + 5000, sample.end());
  EXPECT_NEAR(sample[5000], 5.0, 0.2);
}

TEST(Rng, ChanceEdges) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(21);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, WeightedIndexEmpty) {
  Rng rng(1);
  EXPECT_EQ(rng.weighted_index({}), 0u);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(1);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index({0.0, 0.0, 0.0}));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, WeightedIndexProportional) {
  Rng rng(23);
  int counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(rng.weighted_index({-5.0, 0.0, 1.0}), 2u);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next_u64() == child.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitByKeyIsDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng ca = a.split("gc");
  Rng cb = b.split("gc");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, SplitByDifferentKeysDiffer) {
  Rng a(42);
  Rng b(42);
  Rng ca = a.split("gc");
  Rng cb = b.split("jit");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += ca.next_u64() == cb.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Fnv1a64, KnownValues) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("MaxHeapSize"), fnv1a64("MaxHeapSize"));
}

TEST(Mix64, MixesBothArguments) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), 0u);
  EXPECT_EQ(mix64(7, 9), mix64(7, 9));
}

// Property sweep: every seed yields in-range uniform values.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BasicInvariantsHoldForSeed) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const std::int64_t v = rng.uniform_i64(-100, 100);
    EXPECT_GE(v, -100);
    EXPECT_LE(v, 100);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 1337ull,
                                           0xffffffffffffffffull,
                                           0x123456789abcdefull));

}  // namespace
}  // namespace jat
