#include "jvmsim/run_trace.hpp"

#include <gtest/gtest.h>

#include "jvmsim/engine.hpp"
#include "support/units.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

WorkloadSpec churny() {
  WorkloadSpec w;
  w.name = "trace-test";
  w.total_work = 2000;
  w.startup_work = 200;
  w.startup_classes = 1000;
  w.alloc_rate = 1200 * 1024;
  w.noise_sigma = 0.0;
  return w;
}

TEST(RunTrace, DisabledByDefault) {
  JvmSimulator sim;
  const RunResult r = sim.run(Configuration(FlagRegistry::hotspot()), churny(), 1);
  EXPECT_EQ(r.trace, nullptr);
}

TEST(RunTrace, RecordsOneEventPerCollection) {
  SimOptions options;
  options.collect_trace = true;
  JvmSimulator sim(options);
  const RunResult r = sim.run(Configuration(FlagRegistry::hotspot()), churny(), 1);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_FALSE(r.trace->gc_events.empty());

  std::int64_t young = 0;
  std::int64_t full = 0;
  for (const GcEvent& event : r.trace->gc_events) {
    young += event.kind == GcEventKind::kYoung;
    full += event.kind == GcEventKind::kFull ||
            event.kind == GcEventKind::kConcurrentFailure;
  }
  EXPECT_EQ(young, r.young_gc_count);
  // Metaspace-threshold full collections happen before the main loop and
  // are not traced, so the trace's full count is a lower bound.
  EXPECT_LE(full, r.full_gc_count);
}

TEST(RunTrace, TimestampsMonotoneAndWithinRun) {
  SimOptions options;
  options.collect_trace = true;
  JvmSimulator sim(options);
  const RunResult r = sim.run(Configuration(FlagRegistry::hotspot()), churny(), 1);
  ASSERT_NE(r.trace, nullptr);
  SimTime last;
  for (const GcEvent& event : r.trace->gc_events) {
    EXPECT_GE(event.at, last);
    last = event.at;
    EXPECT_GT(event.pause, SimTime::zero());
    EXPECT_GE(event.heap_used_after, 0);
    EXPECT_LE(event.heap_used_after, r.heap_capacity);
    EXPECT_GT(event.young_size, 0);
  }
}

TEST(RunTrace, CmsRunsRecordConcurrentMarkers) {
  Configuration config(FlagRegistry::hotspot());
  config.set_bool("UseParallelGC", false);
  config.set_bool("UseConcMarkSweepGC", true);
  config.set_bool("UseParNewGC", true);
  config.set_int("MaxHeapSize", 192 * kMiB);

  WorkloadSpec w = churny();
  w.total_work = 4000;
  w.mid_lived_frac = 0.15;
  w.short_lived_frac = 0.7;
  w.mid_lifetime_alloc = 48.0 * 1024 * 1024;
  w.long_lived_bytes = 40.0 * 1024 * 1024;

  SimOptions options;
  options.collect_trace = true;
  JvmSimulator sim(options);
  const RunResult r = sim.run(config, w, 1);
  ASSERT_FALSE(r.crashed) << r.crash_reason;
  ASSERT_NE(r.trace, nullptr);
  bool start_seen = false;
  bool end_seen = false;
  for (const GcEvent& event : r.trace->gc_events) {
    start_seen |= event.kind == GcEventKind::kConcurrentStart;
    end_seen |= event.kind == GcEventKind::kConcurrentEnd;
  }
  EXPECT_TRUE(start_seen);
  EXPECT_TRUE(end_seen);
}

TEST(RunTrace, RenderProducesHotspotFlavouredLine) {
  GcEvent event;
  event.at = SimTime::seconds(1.234);
  event.kind = GcEventKind::kYoung;
  event.pause = SimTime::millis(5);
  event.heap_used_after = 64 * 1024 * 1024;
  const std::string line = RunTrace::render(event, 1024 * 1024 * 1024);
  EXPECT_NE(line.find("1.234"), std::string::npos);
  EXPECT_NE(line.find("GC (Allocation Failure)"), std::string::npos);
  EXPECT_NE(line.find("65536K"), std::string::npos);
  EXPECT_NE(line.find("1048576K"), std::string::npos);
  EXPECT_NE(line.find("0.0050 secs"), std::string::npos);
}

TEST(RunTrace, PauseSumMatchesAggregateForThroughputCollector) {
  SimOptions options;
  options.collect_trace = true;
  JvmSimulator sim(options);
  const RunResult r = sim.run(Configuration(FlagRegistry::hotspot()), churny(), 1);
  ASSERT_NE(r.trace, nullptr);
  SimTime sum;
  for (const GcEvent& event : r.trace->gc_events) sum += event.pause;
  // Metaspace collections are aggregated but not traced; allow that slack.
  EXPECT_LE(sum, r.gc_pause_total);
  EXPECT_GE(sum + SimTime::seconds(1), r.gc_pause_total);
}

TEST(RunTrace, EventKindNames) {
  EXPECT_STREQ(to_string(GcEventKind::kYoung), "GC (Allocation Failure)");
  EXPECT_STREQ(to_string(GcEventKind::kConcurrentFailure),
               "Full GC (Concurrent Mode Failure)");
}

}  // namespace
}  // namespace jat
