// Out-of-process sandbox: the measurements run in forked workers, so these
// tests exercise real process deaths — SIGKILL mid-measurement, wedged
// busy-loops escalated by the watchdog, torn replies — and pin the
// bit-identity contract against the in-process path.
//
// Kept out of the TSan suite (fork + TSan is undefined territory); names
// deliberately avoid the TSan job's -R filter substrings.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <variant>
#include <vector>

#include "determinism_matrix.hpp"
#include "harness/budget.hpp"
#include "harness/resilient.hpp"
#include "harness/runner.hpp"
#include "harness/sandbox.hpp"
#include "harness/trace_analysis.hpp"
#include "support/log.hpp"
#include "tuner/algorithms.hpp"
#include "tuner/session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

WorkloadSpec tiny() {
  WorkloadSpec w;
  w.name = "sb-test";
  w.total_work = 300;
  w.startup_work = 60;
  w.startup_classes = 800;
  w.noise_sigma = 0.01;
  return w;
}

class SandboxTest : public ::testing::Test {
 protected:
  SandboxTest() { set_log_level(LogLevel::kOff); }

  Configuration defaults() { return Configuration(FlagRegistry::hotspot()); }

  Configuration with_new_ratio(std::int64_t value) {
    Configuration c(FlagRegistry::hotspot());
    c.set_int("NewRatio", value);
    return c;
  }

  JvmSimulator sim_;
  WorkloadSpec workload_ = tiny();
  SearchSpace space_{FlagHierarchy::hotspot()};
};

TEST_F(SandboxTest, RoundTripMatchesInProcessBitForBit) {
  BenchmarkRunner reference(sim_, workload_);
  BudgetClock reference_budget(SimTime::minutes(100));
  const Measurement expected = reference.measure(defaults(), &reference_budget);

  BenchmarkRunner runner(sim_, workload_);
  SandboxOptions options;
  options.workers = 2;
  SandboxedEvaluator sandbox(runner, space_.registry(), options);
  sandbox.link_runner(&runner);
  BudgetClock budget(SimTime::minutes(100));
  const Measurement m = sandbox.measure(defaults(), &budget);

  ASSERT_TRUE(m.valid());
  EXPECT_EQ(m.config_fingerprint, expected.config_fingerprint);
  // Raw doubles over the wire: exact equality, not approximate.
  ASSERT_EQ(m.times_ms, expected.times_ms);
  EXPECT_EQ(m.objective(), expected.objective());
  EXPECT_EQ(m.fault, expected.fault);
  EXPECT_EQ(m.failed_reps, expected.failed_reps);
  // The shadow budget's exact metered cost came back as int64 micros.
  EXPECT_EQ(budget.spent(), reference_budget.spent());
  EXPECT_EQ(sandbox.runs_executed(), reference.runs_executed());
  sandbox.shutdown();
}

TEST_F(SandboxTest, RepeatFingerprintsHitTheWorkerCache) {
  BenchmarkRunner runner(sim_, workload_);
  SandboxOptions options;
  options.workers = 3;
  SandboxedEvaluator sandbox(runner, space_.registry(), options);
  sandbox.link_runner(&runner);
  BudgetClock budget(SimTime::minutes(100));

  const Measurement first = sandbox.measure(defaults(), &budget);
  ASSERT_TRUE(first.valid());
  const SimTime after_first = budget.spent();

  // Fingerprint routing sends the repeat to the same worker, whose private
  // cache answers for the in-process cache-lookup fee.
  const Measurement second = sandbox.measure(defaults(), &budget);
  ASSERT_TRUE(second.valid());
  EXPECT_EQ(second.times_ms, first.times_ms);
  EXPECT_EQ(budget.spent() - after_first, SimTime::seconds(0.05));
  EXPECT_EQ(sandbox.cache_hits(), 1);
  EXPECT_EQ(sandbox.runs_executed(), 3);  // simulated once, not twice
  sandbox.shutdown();
}

TEST_F(SandboxTest, KilledWorkerIsClassifiedAsCrashAndRespawned) {
  BenchmarkRunner runner(sim_, workload_);
  const Configuration doomed = with_new_ratio(3);
  SandboxOptions options;
  options.workers = 1;
  options.inject.kill_fingerprints = {doomed.fingerprint()};
  SandboxedEvaluator sandbox(runner, space_.registry(), options);
  sandbox.link_runner(&runner);
  TraceSink trace;
  sandbox.set_trace_sink(&trace);
  BudgetClock budget(SimTime::minutes(100));

  const Measurement m = sandbox.measure(doomed, &budget);
  EXPECT_TRUE(m.crashed);
  EXPECT_EQ(m.fault, FaultClass::kCrash);
  EXPECT_NE(m.crash_reason.find("killed by"), std::string::npos);
  EXPECT_EQ(budget.spent(), options.crash_cost);
  EXPECT_EQ(sandbox.worker_crashes(), 1);
  EXPECT_EQ(sandbox.stats().crashes, 1);

  // The session survives: the next measurement respawns the worker.
  const Measurement next = sandbox.measure(defaults(), &budget);
  EXPECT_TRUE(next.valid());
  EXPECT_EQ(sandbox.workers_respawned(), 1);

  int exits = 0, respawns = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.type == "worker_exit") ++exits;
    if (e.type == "worker_respawn") ++respawns;
    EXPECT_EQ(validate_trace_event(e), "") << e.type;
  }
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(respawns, 1);
  sandbox.shutdown();
}

TEST_F(SandboxTest, WedgedWorkerIsEscalatedAndClassifiedAsTimeout) {
  BenchmarkRunner runner(sim_, workload_);
  const Configuration doomed = with_new_ratio(4);
  SandboxOptions options;
  options.workers = 1;
  options.eval_deadline_s = 0.3;
  options.kill_grace_ms = 150;
  options.inject.wedge_fingerprints = {doomed.fingerprint()};
  SandboxedEvaluator sandbox(runner, space_.registry(), options);
  sandbox.link_runner(&runner);
  TraceSink trace;
  sandbox.set_trace_sink(&trace);
  BudgetClock budget(SimTime::minutes(100));

  const Measurement m = sandbox.measure(doomed, &budget);
  EXPECT_TRUE(m.crashed);
  EXPECT_EQ(m.fault, FaultClass::kTimeout);
  EXPECT_NE(m.crash_reason.find("deadline"), std::string::npos);
  // The harness paid for the whole hang, like an injected-hang timeout.
  EXPECT_EQ(budget.spent(), options.hang_cost);
  EXPECT_EQ(sandbox.deadline_kills(), 1);
  EXPECT_EQ(sandbox.stats().timeouts, 1);

  // The wedge ignores SIGTERM, so the watchdog escalated term -> kill.
  std::vector<std::string> stages;
  for (const TraceEvent& e : trace.events()) {
    if (e.type != "sandbox_kill") continue;
    const TraceValue* stage = e.find("stage");
    ASSERT_NE(stage, nullptr);
    stages.push_back(std::get<std::string>(*stage));
  }
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0], "term");
  EXPECT_EQ(stages[1], "kill");

  // Still operational afterwards.
  EXPECT_TRUE(sandbox.measure(defaults(), &budget).valid());
  sandbox.shutdown();
}

TEST_F(SandboxTest, TornReplyIsTransientAndRetryRecovers) {
  BenchmarkRunner runner(sim_, workload_);
  const Configuration flaky = with_new_ratio(5);
  SandboxOptions options;
  options.workers = 1;
  // Generation-0-only injection: the respawned worker answers cleanly.
  options.inject.torn_fingerprints = {flaky.fingerprint()};
  SandboxedEvaluator sandbox(runner, space_.registry(), options);
  sandbox.link_runner(&runner);

  ResilienceOptions resilience;
  resilience.max_attempts = 3;
  ResilientEvaluator resilient(sandbox, resilience);
  BudgetClock budget(SimTime::minutes(100));

  const Measurement m = resilient.measure(flaky, &budget);
  ASSERT_TRUE(m.valid());
  EXPECT_EQ(m.attempts, 2);                       // one torn reply, one retry
  EXPECT_EQ(m.fault, FaultClass::kTransient);     // taxonomy survives recovery
  EXPECT_EQ(sandbox.torn_replies(), 1);
  EXPECT_EQ(sandbox.workers_respawned(), 1);
  EXPECT_EQ(resilient.stats().retry_successes, 1);
  sandbox.shutdown();
}

TEST_F(SandboxTest, RepeatedCrashesQuarantineTheFingerprint) {
  BenchmarkRunner runner(sim_, workload_);
  const Configuration doomed = with_new_ratio(6);
  SandboxOptions options;
  options.workers = 1;
  options.inject.kill_fingerprints = {doomed.fingerprint()};
  SandboxedEvaluator sandbox(runner, space_.registry(), options);
  sandbox.link_runner(&runner);

  ResilienceOptions resilience;
  resilience.quarantine_threshold = 2;
  ResilientEvaluator resilient(sandbox, resilience);
  BudgetClock budget(SimTime::minutes(100));

  // A process crash is a hard failure: no retry, straight to quarantine
  // accounting.
  EXPECT_EQ(resilient.measure(doomed, &budget).fault, FaultClass::kCrash);
  EXPECT_EQ(resilient.measure(doomed, &budget).fault, FaultClass::kCrash);
  EXPECT_TRUE(resilient.is_quarantined(doomed.fingerprint()));
  const Measurement m = resilient.measure(doomed, &budget);
  EXPECT_EQ(m.fault, FaultClass::kQuarantined);
  EXPECT_EQ(sandbox.worker_crashes(), 2);  // the third never reached a worker
  sandbox.shutdown();
}

TEST_F(SandboxTest, SessionOutcomeIsBitIdenticalWithoutFaults) {
  // Serial sandbox matches the in-process reference including budget
  // positions; pipelined sandbox matches the trajectory and counters (the
  // matrix skips budget comparison for pipelined cells — documented
  // charge-interleave nondeterminism).
  SessionOptions base;
  base.budget = SimTime::minutes(12);
  base.seed = 41;
  DeterminismMatrix matrix;
  matrix.cases = {{.eval_threads = 0, .sandbox = true, .sandbox_workers = 3},
                  {.eval_threads = 2, .sandbox = true, .sandbox_workers = 3}};
  run_determinism_matrix(
      sim_, workload_, base, [] { return std::make_unique<HierarchicalTuner>(); },
      matrix);
}

// The adaptive measurement policy crosses the process boundary whole:
// incumbent snapshots ride the request frame, stop reasons ride the reply,
// and top-ups route to the worker holding the cached partial — so the
// sandboxed trajectory matches the in-process one bit for bit, policy on.
TEST_F(SandboxTest, AdaptivePolicySessionMatchesInProcessBitForBit) {
  auto run_session = [&](bool sandboxed) {
    SessionOptions options;
    options.budget = SimTime::minutes(12);
    options.seed = 41;
    options.sandbox = sandboxed;
    options.sandbox_options.workers = 3;
    options.measurement.adaptive = true;
    options.measurement.max_reps = 6;
    options.measurement.ci_rel = 0.02;
    options.measurement.race_p = 0.05;
    TuningSession session(sim_, workload_, options);
    HierarchicalTuner tuner;
    return session.run(tuner);
  };
  const TuningOutcome expected = run_session(false);
  const TuningOutcome sandboxed = run_session(true);
  ASSERT_EQ(sandboxed.db->size(), expected.db->size());
  for (std::size_t i = 0; i < expected.db->size(); ++i) {
    const EvalRecord a = expected.db->get(i);
    const EvalRecord b = sandboxed.db->get(i);
    EXPECT_EQ(b.fingerprint, a.fingerprint) << "row " << i;
    EXPECT_EQ(b.objective_ms, a.objective_ms) << "row " << i;
    EXPECT_EQ(b.budget_spent, a.budget_spent) << "row " << i;
    EXPECT_EQ(b.stop, a.stop) << "row " << i;
  }
  EXPECT_EQ(sandboxed.best_ms, expected.best_ms);
  EXPECT_EQ(sandboxed.best_config.fingerprint(),
            expected.best_config.fingerprint());
  EXPECT_EQ(sandboxed.runs, expected.runs);
  EXPECT_EQ(sandboxed.budget_spent, expected.budget_spent);
}

TEST_F(SandboxTest, FaultInjectedSessionCompletesWithEveryFailureClassified) {
  SessionOptions options;
  options.budget = SimTime::minutes(15);
  options.seed = 42;
  options.resilient = true;
  options.sandbox = true;
  options.sandbox_options.workers = 3;
  options.sandbox_options.eval_deadline_s = 1.0;
  options.sandbox_options.kill_grace_ms = 150;
  options.sandbox_options.inject.kill_rate = 0.08;
  options.sandbox_options.inject.wedge_rate = 0.02;
  TuningSession session(sim_, workload_, options);
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);

  // The session finished despite real worker deaths, and every failure in
  // the log carries a classification from the taxonomy (kDeterministic is
  // the simulator's own config-caused crashes, not a sandbox fault).
  EXPECT_TRUE(std::isfinite(outcome.best_ms));
  EXPECT_GT(outcome.fault_stats.crashes + outcome.fault_stats.timeouts, 0);
  for (const EvalRecord& rec : outcome.db->all()) {
    if (std::isfinite(rec.objective_ms)) continue;
    EXPECT_NE(rec.fault, FaultClass::kNone)
        << "unclassified failure: " << rec.crash_reason;
    EXPECT_FALSE(rec.crash_reason.empty());
  }
}

}  // namespace
}  // namespace jat
