// EvalScheduler contract tests: the ask/tell trajectory is bit-identical
// for any eval_threads at a fixed in-flight window, budget overshoot is
// bounded by one window, BudgetClock admission control survives a
// many-thread hammer, the LegacyTunerAdapter bridges old tune() loops, and
// the outcome ratio metrics agree on crashed corners.
#include "tuner/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "determinism_matrix.hpp"
#include "support/log.hpp"
#include "tuner/algorithms.hpp"
#include "tuner/legacy_adapter.hpp"
#include "tuner/session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

WorkloadSpec scheduler_workload() {
  WorkloadSpec w;
  w.name = "scheduler-test";
  w.total_work = 500;
  w.startup_work = 100;
  w.startup_classes = 1500;
  w.alloc_rate = 600 * 1024;
  w.method_count = 3000;
  w.noise_sigma = 0.01;
  return w;
}

std::unique_ptr<SearchStrategy> make_strategy(const std::string& name) {
  if (name == "random") return std::make_unique<RandomSearch>(0.15);
  if (name == "hill") return std::make_unique<HillClimber>();
  if (name == "annealing") return std::make_unique<SimulatedAnnealing>();
  if (name == "genetic") return std::make_unique<GeneticTuner>();
  if (name == "bandit") return std::make_unique<BanditEnsemble>();
  if (name == "ils") return std::make_unique<IteratedLocalSearch>();
  if (name == "subset") return std::make_unique<SubsetTuner>();
  if (name == "hierarchical") return std::make_unique<HierarchicalTuner>();
  return nullptr;
}

/// Smoke-scale options under which the determinism contract is exact:
/// single repetitions keep each measurement atomic against mid-measurement
/// budget expiry, and racing off removes the one interleaving-dependent
/// early-stop (both documented in tuner/strategy.hpp).
SessionOptions smoke_options(std::size_t eval_threads) {
  SessionOptions options;
  options.budget = SimTime::minutes(8);
  options.repetitions = 1;
  options.racing_factor = 0.0;
  options.seed = 99;
  options.eval_threads = eval_threads;
  options.inflight = 8;
  return options;
}

class SchedulerDeterminism : public ::testing::TestWithParam<const char*> {
 protected:
  SchedulerDeterminism() { set_log_level(LogLevel::kWarn); }
  JvmSimulator sim_;
};

// The tentpole guarantee: for every native strategy the full outcome —
// incumbent fingerprint, objectives, counters, evaluation log — is
// identical whether evaluations run serially or on 2 or 8 worker threads
// (the shared contract lives in determinism_matrix.hpp).
TEST_P(SchedulerDeterminism, OutcomeIdenticalAcrossEvalThreads) {
  const std::string name = GetParam();
  DeterminismMatrix matrix;
  matrix.cases = {{.eval_threads = 2}, {.eval_threads = 4},
                  {.eval_threads = 8}};
  run_determinism_matrix(
      sim_, scheduler_workload(), smoke_options(0),
      [&] { return make_strategy(name); }, matrix, name);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SchedulerDeterminism,
                         ::testing::Values("random", "hill", "annealing",
                                           "genetic", "bandit", "ils",
                                           "subset", "hierarchical"));

class SchedulerSuite : public ::testing::Test {
 protected:
  SchedulerSuite() { set_log_level(LogLevel::kWarn); }
  JvmSimulator sim_;
};

// Budget property: admission gates on the committed ledger, so the total
// charge can exceed the budget by at most one in-flight window of
// measurements (each itself bounded by the costliest single evaluation).
TEST_F(SchedulerSuite, OvershootBoundedByOneWindow) {
  SessionOptions options = smoke_options(4);
  options.inflight = 8;
  TuningSession session(sim_, scheduler_workload(), options);
  RandomSearch strategy(0.15);
  const TuningOutcome outcome = session.run(strategy);
  ASSERT_NE(outcome.db, nullptr);
  ASSERT_GT(outcome.db->size(), 1u);

  // The costliest single evaluation, read off the log's budget positions.
  SimTime max_eval_cost = outcome.db->get(0).budget_spent;
  for (std::size_t i = 1; i < outcome.db->size(); ++i) {
    const SimTime delta =
        outcome.db->get(i).budget_spent - outcome.db->get(i - 1).budget_spent;
    max_eval_cost = std::max(max_eval_cost, delta);
  }
  const SimTime window_bound = max_eval_cost * double(options.inflight);
  EXPECT_LE(outcome.budget_spent.as_seconds(),
            (options.budget + window_bound).as_seconds())
      << "overshoot " << (outcome.budget_spent - options.budget).to_string()
      << " exceeds one window " << window_bound.to_string();
}

// A tiny window must still make progress and stay within its tighter bound.
TEST_F(SchedulerSuite, SingleSlotWindowDegradesToSerial) {
  SessionOptions options = smoke_options(4);
  options.inflight = 1;
  TuningSession session(sim_, scheduler_workload(), options);
  HillClimber strategy;
  const TuningOutcome outcome = session.run(strategy);
  EXPECT_GE(outcome.evaluations, 2);
  EXPECT_TRUE(std::isfinite(outcome.best_ms));

  // With one slot the outcome equals the serial trajectory at window 1.
  SessionOptions serial = smoke_options(0);
  serial.inflight = 1;
  TuningSession serial_session(sim_, scheduler_workload(), serial);
  HillClimber serial_strategy;
  const TuningOutcome reference = serial_session.run(serial_strategy);
  EXPECT_EQ(reference.best_config.fingerprint(),
            outcome.best_config.fingerprint());
  EXPECT_DOUBLE_EQ(reference.best_ms, outcome.best_ms);
}

// The window size is part of the trajectory, so two different windows are
// allowed to (and at smoke scale, do) explore differently — this guards
// against accidentally serializing every ask.
TEST_F(SchedulerSuite, WindowSizeShapesTheTrajectory) {
  SessionOptions narrow = smoke_options(0);
  narrow.inflight = 1;
  SessionOptions wide = smoke_options(0);
  wide.inflight = 8;
  TuningSession s1(sim_, scheduler_workload(), narrow);
  TuningSession s2(sim_, scheduler_workload(), wide);
  GeneticTuner t1;
  GeneticTuner t2;
  const TuningOutcome a = s1.run(t1);
  const TuningOutcome b = s2.run(t2);
  // Identical measurement semantics, but speculation differs: compare logs.
  ASSERT_GT(a.db->size(), 4u);
  ASSERT_GT(b.db->size(), 4u);
  bool any_difference = a.db->size() != b.db->size();
  for (std::size_t i = 0; !any_difference && i < a.db->size(); ++i) {
    any_difference = a.db->get(i).fingerprint != b.db->get(i).fingerprint;
  }
  EXPECT_TRUE(any_difference);
}

// ---- BudgetClock admission control ------------------------------------------

// Many threads hammer try_reserve/charge/release concurrently; the sum of
// admitted work must never exceed budget + one cost quantum per straggler
// that won the final race (at most one, by the CAS loop's re-check).
TEST_F(SchedulerSuite, TryReserveHammerNeverRunsAway) {
  const SimTime total = SimTime::seconds(1000);
  const SimTime cost = SimTime::seconds(3);
  BudgetClock clock(total);
  std::atomic<std::int64_t> admitted{0};
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (clock.try_reserve(cost)) {
        admitted.fetch_add(1, std::memory_order_relaxed);
        clock.charge(cost);
        clock.release(cost);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Admission stops as soon as charged + reserved covers the budget; each
  // thread can straddle the limit with at most its own final reservation.
  EXPECT_TRUE(clock.exhausted());
  EXPECT_LE(clock.spent().as_seconds(),
            (total + cost * double(kThreads)).as_seconds());
  EXPECT_EQ(clock.reserved(), SimTime::zero());
  EXPECT_EQ(admitted.load() * cost.as_seconds(), clock.spent().as_seconds());
}

TEST_F(SchedulerSuite, TryReserveRefusesWhenNoHeadroom) {
  BudgetClock clock(SimTime::seconds(10));
  clock.charge(SimTime::seconds(10));
  EXPECT_FALSE(clock.try_reserve(SimTime::seconds(1)));

  BudgetClock fresh(SimTime::seconds(10));
  ASSERT_TRUE(fresh.try_reserve(SimTime::seconds(10)));
  // Headroom is gone while the reservation is outstanding...
  EXPECT_FALSE(fresh.try_reserve(SimTime::seconds(1)));
  fresh.release(SimTime::seconds(10));
  // ...and back once it is released without being charged.
  EXPECT_TRUE(fresh.try_reserve(SimTime::seconds(1)));
}

// ---- LegacyTunerAdapter -----------------------------------------------------

/// A deliberately old-style tuner: blocking evaluate() calls, a blocking
/// batch, and state carried across them on the tune() stack.
class LegacyProbe final : public Tuner {
 public:
  std::string name() const override { return "legacy-probe"; }
  void tune(TuningContext& ctx) override {
    while (!ctx.exhausted()) {
      Configuration candidate = ctx.best_config();
      ctx.space().mutate(candidate, ctx.rng(), 2);
      ctx.evaluate(candidate);
      std::vector<Configuration> batch;
      for (int i = 0; i < 3; ++i) {
        Configuration c = ctx.best_config();
        ctx.space().mutate(c, ctx.rng(), 1);
        batch.push_back(std::move(c));
      }
      const std::vector<double> objectives = ctx.evaluate_batch(batch);
      ++rounds_;
      for (double objective : objectives) {
        if (std::isfinite(objective)) ++finite_results_;
      }
    }
  }
  int rounds() const { return rounds_; }
  int finite_results() const { return finite_results_; }

 private:
  int rounds_ = 0;
  int finite_results_ = 0;
};

TEST_F(SchedulerSuite, LegacyTunerRunsThroughTheScheduler) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    TuningSession session(sim_, scheduler_workload(), smoke_options(threads));
    LegacyProbe probe;
    const TuningOutcome outcome = session.run(probe);  // run(Tuner&) overload
    EXPECT_EQ(outcome.tuner_name, "legacy-probe");
    EXPECT_GT(probe.rounds(), 0) << "eval_threads=" << threads;
    EXPECT_GT(probe.finite_results(), 0) << "eval_threads=" << threads;
    EXPECT_GE(outcome.evaluations, 2);
    EXPECT_TRUE(std::isfinite(outcome.best_ms));
    EXPECT_LE(outcome.best_ms, outcome.default_ms);
  }
}

TEST_F(SchedulerSuite, LegacyAdapterPropagatesTunerExceptions) {
  class Throwing final : public Tuner {
   public:
    std::string name() const override { return "throwing"; }
    void tune(TuningContext& ctx) override {
      ctx.evaluate(ctx.best_config());
      throw std::runtime_error("tuner bug");
    }
  };
  TuningSession session(sim_, scheduler_workload(), smoke_options(0));
  Throwing tuner;
  EXPECT_THROW((void)session.run(tuner), std::runtime_error);
}

// ---- TuningOutcome ratio metrics --------------------------------------------

TEST_F(SchedulerSuite, OutcomeMetricsAgreeOnCrashedCorners) {
  TuningOutcome outcome{.workload_name = "w",
                        .tuner_name = "t",
                        .best_config = Configuration(FlagRegistry::hotspot()),
                        .default_ms = 0,
                        .best_ms = 0,
                        .evaluations = 0,
                        .runs = 0,
                        .cache_hits = 0,
                        .budget_spent = SimTime::zero(),
                        .fault_stats = FaultStats{},
                        .db = nullptr};
  const double inf = std::numeric_limits<double>::infinity();

  // Crashed baseline: previously speedup() returned inf/best (= inf) while
  // improvement_frac() returned a garbage negative; both must now be 0.
  outcome.default_ms = inf;
  outcome.best_ms = 100.0;
  EXPECT_FALSE(outcome.comparable());
  EXPECT_EQ(outcome.improvement_frac(), 0.0);
  EXPECT_EQ(outcome.speedup(), 0.0);

  // Crashed winner.
  outcome.default_ms = 100.0;
  outcome.best_ms = inf;
  EXPECT_FALSE(outcome.comparable());
  EXPECT_EQ(outcome.improvement_frac(), 0.0);
  EXPECT_EQ(outcome.speedup(), 0.0);

  // Zero (unmeasured) sides are not comparable either.
  outcome.default_ms = 0.0;
  outcome.best_ms = 100.0;
  EXPECT_FALSE(outcome.comparable());
  EXPECT_EQ(outcome.speedup(), 0.0);

  // The healthy case still reports the paper's metrics.
  outcome.default_ms = 200.0;
  outcome.best_ms = 100.0;
  EXPECT_TRUE(outcome.comparable());
  EXPECT_DOUBLE_EQ(outcome.improvement_frac(), 0.5);
  EXPECT_DOUBLE_EQ(outcome.speedup(), 2.0);
}

}  // namespace
}  // namespace jat
