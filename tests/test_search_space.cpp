#include "tuner/search_space.hpp"

#include <gtest/gtest.h>

#include "flags/validate.hpp"

namespace jat {
namespace {

class SearchSpaceTest : public ::testing::Test {
 protected:
  const SearchSpace space_{FlagHierarchy::hotspot()};
  const FlagRegistry& reg_ = FlagRegistry::hotspot();
  Rng rng_{2025};

  bool all_in_domain(const Configuration& c) {
    for (FlagId id = 0; id < reg_.size(); ++id) {
      if (!reg_.spec(id).in_domain(c.get(id))) return false;
    }
    return true;
  }
};

TEST_F(SearchSpaceTest, RandomValueRespectsDomains) {
  for (FlagId id = 0; id < reg_.size(); ++id) {
    const FlagSpec& spec = reg_.spec(id);
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(spec.in_domain(space_.random_value(spec, rng_))) << spec.name;
    }
  }
}

TEST_F(SearchSpaceTest, NeighborValueRespectsDomains) {
  for (FlagId id = 0; id < reg_.size(); ++id) {
    const FlagSpec& spec = reg_.spec(id);
    FlagValue v = spec.default_value;
    for (int i = 0; i < 5; ++i) {
      v = space_.neighbor_value(spec, v, rng_, 1.5);
      EXPECT_TRUE(spec.in_domain(v)) << spec.name;
    }
  }
}

TEST_F(SearchSpaceTest, NeighborBoolFlips) {
  const FlagSpec& spec = reg_.spec(reg_.require("UseBiasedLocking"));
  EXPECT_EQ(space_.neighbor_value(spec, FlagValue(true), rng_).as_bool(), false);
  EXPECT_EQ(space_.neighbor_value(spec, FlagValue(false), rng_).as_bool(), true);
}

TEST_F(SearchSpaceTest, NeighborEnumPicksDifferentChoice) {
  const FlagSpec& spec = reg_.spec(reg_.require("ExecutionMode"));
  for (int i = 0; i < 20; ++i) {
    const FlagValue v =
        space_.neighbor_value(spec, FlagValue(std::string("mixed")), rng_);
    EXPECT_NE(v.as_string(), "mixed");
  }
}

TEST_F(SearchSpaceTest, MutateOnlyTouchesActiveFlags) {
  // The CMS subtree is inactive under the default (parallel) structure, so
  // no amount of mutation may touch a CMS flag.
  for (int trial = 0; trial < 50; ++trial) {
    Configuration c(reg_);
    space_.mutate(c, rng_, 5);
    for (FlagId id : reg_.by_subsystem(Subsystem::kGcCms)) {
      EXPECT_TRUE(c.is_default(id)) << reg_.spec(id).name;
    }
  }
}

TEST_F(SearchSpaceTest, MutateNeverTouchesStructuralFlags) {
  const FlagHierarchy& h = FlagHierarchy::hotspot();
  for (int trial = 0; trial < 50; ++trial) {
    Configuration c(reg_);
    space_.mutate(c, rng_, 8);
    for (FlagId id : h.structural_flags()) {
      EXPECT_TRUE(c.is_default(id)) << reg_.spec(id).name;
    }
  }
}

TEST_F(SearchSpaceTest, MutateStructureKeepsConfigStartable) {
  for (int trial = 0; trial < 100; ++trial) {
    Configuration c(reg_);
    space_.mutate_structure(c, rng_);
    space_.mutate_structure(c, rng_);
    EXPECT_TRUE(is_startable(c)) << c.render_command_line();
  }
}

TEST_F(SearchSpaceTest, MutateStructureChangesExactlyOneGroup) {
  const FlagHierarchy& h = FlagHierarchy::hotspot();
  Configuration c(reg_);
  space_.mutate_structure(c, rng_);
  int changed_groups = 0;
  const Configuration defaults(reg_);
  for (const auto& group : h.groups()) {
    if (group.current_option(c) != group.current_option(defaults)) {
      ++changed_groups;
    }
  }
  EXPECT_EQ(changed_groups, 1);
}

TEST_F(SearchSpaceTest, CrossoverStaysInDomainAndStartable) {
  for (int trial = 0; trial < 50; ++trial) {
    const Configuration a = space_.random_config(rng_, 0.3);
    const Configuration b = space_.random_config(rng_, 0.3);
    const Configuration child = space_.crossover(a, b, rng_);
    EXPECT_TRUE(all_in_domain(child));
    EXPECT_TRUE(is_startable(child)) << child.render_command_line();
  }
}

TEST_F(SearchSpaceTest, ZeroDensityRandomConfigOnlyChangesStructure) {
  const FlagHierarchy& h = FlagHierarchy::hotspot();
  const Configuration c = space_.random_config(rng_, 0.0);
  for (FlagId id : c.changed_flags()) {
    const auto& sf = h.structural_flags();
    EXPECT_TRUE(std::find(sf.begin(), sf.end(), id) != sf.end())
        << reg_.spec(id).name;
  }
}

TEST_F(SearchSpaceTest, FullDensityRandomConfigChangesMuch) {
  const Configuration c = space_.random_config(rng_, 1.0);
  EXPECT_GT(c.changed_flags().size(), 100u);
}

TEST_F(SearchSpaceTest, FlatRandomEventuallyProducesFatalConfigs) {
  // The whole point of the hierarchy: flat sampling produces collector
  // conflicts a real JVM refuses to start with.
  int fatal = 0;
  for (int trial = 0; trial < 60; ++trial) {
    if (!is_startable(space_.random_config_flat(rng_, 1.0))) ++fatal;
  }
  EXPECT_GT(fatal, 10);
}

TEST_F(SearchSpaceTest, HierarchyAwareRandomNeverFatal) {
  for (int trial = 0; trial < 100; ++trial) {
    const Configuration c = space_.random_config(rng_, 1.0);
    EXPECT_TRUE(is_startable(c)) << c.render_command_line();
  }
}

TEST_F(SearchSpaceTest, MutateFlatCanTouchAnyFlag) {
  // With enough mutations some inert/diagnostic flag moves.
  Configuration c(reg_);
  space_.mutate_flat(c, rng_, 200);
  bool diagnostic_touched = false;
  for (FlagId id : c.changed_flags()) {
    diagnostic_touched |= reg_.spec(id).subsystem == Subsystem::kDiagnostic;
  }
  EXPECT_TRUE(diagnostic_touched);
}

// Property sweep: hierarchy-aware generation is valid across seeds.
class RandomConfigSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomConfigSweep, GeneratedConfigsAreValidAndStartable) {
  const SearchSpace space(FlagHierarchy::hotspot());
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    Configuration c = space.random_config(rng, 0.5);
    EXPECT_TRUE(is_startable(c));
    space.mutate(c, rng, 3);
    space.mutate_structure(c, rng);
    space.mutate(c, rng, 3);
    EXPECT_TRUE(is_startable(c)) << c.render_command_line();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigSweep,
                         ::testing::Range<std::uint64_t>(100, 115));

}  // namespace
}  // namespace jat
