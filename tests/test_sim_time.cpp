#include "support/sim_time.hpp"

#include <gtest/gtest.h>

namespace jat {
namespace {

TEST(SimTime, Constructors) {
  EXPECT_EQ(SimTime::micros(1500).as_micros(), 1500);
  EXPECT_EQ(SimTime::millis(2).as_micros(), 2000);
  EXPECT_EQ(SimTime::seconds(1.5).as_micros(), 1500000);
  EXPECT_EQ(SimTime::minutes(2).as_micros(), 120000000);
  EXPECT_TRUE(SimTime::zero().is_zero());
  EXPECT_TRUE(SimTime::infinite().is_infinite());
}

TEST(SimTime, Conversions) {
  const SimTime t = SimTime::millis(2500);
  EXPECT_DOUBLE_EQ(t.as_millis(), 2500.0);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 2.5);
  EXPECT_NEAR(t.as_minutes(), 2.5 / 60.0, 1e-12);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(100);
  const SimTime b = SimTime::millis(50);
  EXPECT_EQ((a + b).as_millis(), 150.0);
  EXPECT_EQ((a - b).as_millis(), 50.0);
  EXPECT_EQ((a * 2.0).as_millis(), 200.0);
  EXPECT_EQ((0.5 * a).as_millis(), 50.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::millis(10);
  t += SimTime::millis(5);
  EXPECT_EQ(t.as_millis(), 15.0);
  t -= SimTime::millis(3);
  EXPECT_EQ(t.as_millis(), 12.0);
}

TEST(SimTime, InfinitePropagatesThroughAddition) {
  const SimTime inf = SimTime::infinite();
  EXPECT_TRUE((inf + SimTime::seconds(1)).is_infinite());
  EXPECT_TRUE((SimTime::seconds(1) + inf).is_infinite());
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_GT(SimTime::infinite(), SimTime::minutes(100000));
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_LE(SimTime::zero(), SimTime::zero());
}

TEST(SimTime, ToStringPicksSensibleUnits) {
  EXPECT_EQ(SimTime::micros(500).to_string(), "500us");
  EXPECT_EQ(SimTime::millis(340).to_string(), "340.0ms");
  EXPECT_EQ(SimTime::seconds(2.5).to_string(), "2.50s");
  EXPECT_EQ(SimTime::minutes(200).to_string(), "200.0min");
  EXPECT_EQ(SimTime::infinite().to_string(), "inf");
}

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.as_micros(), 0);
}

}  // namespace
}  // namespace jat
