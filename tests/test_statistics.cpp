#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace jat {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

TEST(MedianOf, Basics) {
  EXPECT_EQ(median_of({}), 0.0);
  EXPECT_EQ(median_of({7.0}), 7.0);
  EXPECT_EQ(median_of({1.0, 9.0}), 5.0);
  EXPECT_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Summarize, EmptySample) {
  const SampleSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownSample) {
  const SampleSummary s = summarize({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  // MAD robust to the outlier: |1-3|,|2-3|,|3-3|,|4-3|,|100-3| -> median 1.
  EXPECT_EQ(s.mad, 1.0);
  EXPECT_GT(s.ci95_half, 0.0);
}

TEST(Summarize, ConstantSampleHasZeroSpread) {
  const SampleSummary s = summarize({5.0, 5.0, 5.0, 5.0});
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.mad, 0.0);
  EXPECT_EQ(s.ci95_half, 0.0);
}

TEST(TCritical, MonotoneDecreasingInDof) {
  EXPECT_GT(t_critical_95(1), t_critical_95(2));
  EXPECT_GT(t_critical_95(2), t_critical_95(10));
  EXPECT_GT(t_critical_95(10), t_critical_95(100));
  EXPECT_NEAR(t_critical_95(1e9), 1.96, 0.01);
}

TEST(TCritical, TableAnchors) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(5), 2.571, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
}

// The coarse table is gone: t_critical_95 now inverts the exact two-sided
// p-function by bisection, so values match published criticals to far more
// digits than the old 3-decimal table — including dof the table never had.
TEST(TCritical, ExactInversionMatchesPublishedValues) {
  EXPECT_NEAR(t_critical_95(1), 12.7062047, 1e-6);
  EXPECT_NEAR(t_critical_95(2), 4.3026527, 1e-6);
  EXPECT_NEAR(t_critical_95(5), 2.5705818, 1e-6);
  EXPECT_NEAR(t_critical_95(30), 2.0422725, 1e-6);
  // Off-table dof used to fall back to coarse interpolation.
  EXPECT_NEAR(t_critical_95(45), 2.0141034, 1e-6);
  EXPECT_NEAR(t_critical_95(200), 1.9718962, 1e-6);
}

// Round-trip invariant: p(t_crit(dof), dof) == 0.05 for every dof, which is
// the defining property of the critical value (the table could only satisfy
// it approximately).
TEST(TCritical, RoundTripsThroughStudentTP) {
  for (const double dof : {1.0, 2.0, 3.5, 7.0, 12.0, 64.0, 65.0, 333.0}) {
    EXPECT_NEAR(student_t_two_sided_p(t_critical_95(dof), dof), 0.05, 1e-9)
        << "dof=" << dof;
  }
}

TEST(WelchTTest, InsufficientSamples) {
  RunningStat a;
  RunningStat b;
  a.add(1.0);
  b.add(2.0);
  const WelchResult r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant_at_05);
}

TEST(WelchTTest, ClearlyDifferentMeans) {
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 10; ++i) {
    a.add(10.0 + 0.1 * i);
    b.add(20.0 + 0.1 * i);
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_at_05);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_LT(r.t, 0.0);  // a below b
}

TEST(WelchTTest, IdenticalSamplesNotSignificant) {
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 10; ++i) {
    a.add(5.0 + i);
    b.add(5.0 + i);
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant_at_05);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
}

TEST(WelchTTest, ZeroVarianceEqualMeans) {
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 5; ++i) {
    a.add(3.0);
    b.add(3.0);
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant_at_05);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(WelchTTest, ZeroVarianceDifferentMeans) {
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 5; ++i) {
    a.add(3.0);
    b.add(4.0);
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_at_05);
  EXPECT_EQ(r.p_value, 0.0);
}

// Regression: the zero-variance branch used to report the arbitrary
// sentinel t = 1e9. Two identical-variance samples with different means are
// infinitely separated in t units — the statistic is now a signed infinity,
// not a magic number downstream code could mistake for a real value.
TEST(WelchTTest, ZeroVarianceTStatisticIsSignedInfinity) {
  RunningStat lo;
  RunningStat hi;
  for (int i = 0; i < 5; ++i) {
    lo.add(3.0);
    hi.add(4.0);
  }
  const WelchResult below = welch_t_test(lo, hi);
  EXPECT_TRUE(std::isinf(below.t));
  EXPECT_LT(below.t, 0.0);  // lo below hi
  const WelchResult above = welch_t_test(hi, lo);
  EXPECT_TRUE(std::isinf(above.t));
  EXPECT_GT(above.t, 0.0);
  EXPECT_EQ(below.p_value, 0.0);
  EXPECT_EQ(above.p_value, 0.0);
}

TEST(StudentTTwoSidedP, TableAnchors) {
  // p at the two-sided 95% critical value is 0.05 by definition.
  EXPECT_NEAR(student_t_two_sided_p(12.706, 1), 0.05, 5e-4);
  EXPECT_NEAR(student_t_two_sided_p(4.303, 2), 0.05, 5e-4);
  EXPECT_NEAR(student_t_two_sided_p(2.776, 4), 0.05, 5e-4);
  EXPECT_NEAR(student_t_two_sided_p(1.96, 1e6), 0.05, 1e-3);
  // Textbook value: P(|T_2| >= 3) = 0.0955.
  EXPECT_NEAR(student_t_two_sided_p(3.0, 2), 0.0955, 5e-4);
}

TEST(StudentTTwoSidedP, EdgeCases) {
  EXPECT_EQ(student_t_two_sided_p(0.0, 5), 1.0);
  EXPECT_EQ(student_t_two_sided_p(std::numeric_limits<double>::infinity(), 5),
            0.0);
  EXPECT_EQ(student_t_two_sided_p(1.0, 0.0), 1.0);  // degenerate dof
  // Sign-symmetric and monotone decreasing in |t|.
  EXPECT_EQ(student_t_two_sided_p(-2.5, 7), student_t_two_sided_p(2.5, 7));
  EXPECT_GT(student_t_two_sided_p(1.0, 7), student_t_two_sided_p(2.0, 7));
}

TEST(StudentTTwoSidedP, HeavierTailsThanNormalAtSmallDof) {
  // The t distribution's heavy tails matter exactly at the sample sizes the
  // harness uses; a normal approximation understates p there.
  EXPECT_GT(student_t_two_sided_p(2.0, 2), student_t_two_sided_p(2.0, 1e8));
  EXPECT_NEAR(student_t_two_sided_p(2.0, 1e8), 0.0455, 1e-3);
}

// Regression: p_value and significant_at_05 used to come from different
// approximations (normal vs t table) and disagreed at small dof. With
// n = 3 per side and |t| ~ 2.3 (dof = 4), the normal approximation says
// p = 0.021 while the t distribution says p = 0.083 — the old code
// reported the first alongside significant_at_05 == false.
TEST(WelchTTest, PValueConsistentWithSignificanceAtSmallN) {
  RunningStat a;
  RunningStat b;
  for (double x : {10.0, 11.0, 12.0}) a.add(x);
  for (double x : {11.878, 12.878, 13.878}) b.add(x);
  const WelchResult r = welch_t_test(a, b);
  EXPECT_NEAR(r.t, -2.3, 0.01);
  EXPECT_NEAR(r.dof, 4.0, 1e-9);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_FALSE(r.significant_at_05);
  EXPECT_EQ(r.p_value < 0.05, r.significant_at_05);
}

// Property: the consistency invariant holds across a sweep of separations
// at n = 3, including ones straddling the significance boundary.
TEST(WelchTTest, PValueAndFlagAgreeAcrossSeparations) {
  for (int step = 0; step <= 40; ++step) {
    const double delta = 0.1 * step;
    RunningStat a;
    RunningStat b;
    for (double x : {10.0, 11.0, 12.0}) a.add(x);
    for (double x : {10.0 + delta, 11.0 + delta, 12.0 + delta}) b.add(x);
    const WelchResult r = welch_t_test(a, b);
    EXPECT_EQ(r.p_value < 0.05, r.significant_at_05)
        << "delta=" << delta << " t=" << r.t << " dof=" << r.dof
        << " p=" << r.p_value;
  }
}

TEST(GeometricMean, Basics) {
  EXPECT_EQ(geometric_mean({}), 0.0);
  EXPECT_EQ(geometric_mean({-1.0, 0.0}), 0.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometric_mean({5.0}), 5.0, 1e-12);
  // Any non-positive entry zeroes the result — the geometric mean of a set
  // containing zero is zero, and silently skipping entries would overstate
  // the mean of the values that remain.
  EXPECT_EQ(geometric_mean({0.0, 4.0, 9.0}), 0.0);
  EXPECT_EQ(geometric_mean({4.0, -2.0, 9.0}), 0.0);
}

// Property: summarize() mean/stddev agree with RunningStat for random data.
class SummarizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SummarizeSweep, AgreesWithRunningStat) {
  std::vector<double> xs;
  RunningStat rs;
  for (int i = 0; i < 40 + GetParam(); ++i) {
    const double x = std::cos(i * GetParam() + 1) * 7 + GetParam();
    xs.push_back(x);
    rs.add(x);
  }
  const SampleSummary s = summarize(xs);
  EXPECT_NEAR(s.mean, rs.mean(), 1e-9);
  EXPECT_NEAR(s.stddev, rs.stddev(), 1e-9);
  EXPECT_EQ(s.min, rs.min());
  EXPECT_EQ(s.max, rs.max());
}

INSTANTIATE_TEST_SUITE_P(Samples, SummarizeSweep, ::testing::Range(1, 8));

}  // namespace
}  // namespace jat
