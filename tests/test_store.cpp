// Cross-session result store: on-disk round-trips, tolerant loading,
// multi-handle locking, the runner's read-through/write-behind tier, and
// the warm-start transfer contract — including the headline acceptance
// criterion: a warm-started second session reaches the cold session's
// final incumbent objective with at least 25% fewer charged evaluations.
//
// This binary forks (sandbox arms of the determinism matrix), so it is
// kept out of the TSan suite; test names deliberately avoid the TSan
// job's -R filter substrings.
#include "harness/store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "determinism_matrix.hpp"
#include "flags/parse.hpp"
#include "harness/budget.hpp"
#include "harness/journal.hpp"
#include "harness/runner.hpp"
#include "support/log.hpp"
#include "tuner/algorithms.hpp"
#include "tuner/search_space.hpp"
#include "tuner/session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "jat_store_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

WorkloadSpec store_workload() {
  WorkloadSpec w;
  w.name = "store-test";
  w.total_work = 400;
  w.startup_work = 80;
  w.startup_classes = 1200;
  w.alloc_rate = 500 * 1024;
  w.method_count = 2500;
  w.noise_sigma = 0.01;
  return w;
}

StoreRecord make_record(std::uint64_t space, std::uint64_t wl,
                        std::uint64_t cfg, double objective_value,
                        int reps = 3) {
  StoreRecord r;
  r.key = {space, wl, cfg, "run_time"};
  r.workload = "store-test";
  r.command_line = "-XX:NewRatio=" + std::to_string(cfg % 7 + 1);
  r.objective_value = objective_value;
  for (int i = 0; i < reps; ++i) {
    r.times_ms.push_back(objective_value + i);
    MetricVector m;
    m[MetricId::kTotalTimeMs] = objective_value + i;
    m[MetricId::kThroughput] = 1000.0 / (objective_value + i);
    r.rep_metrics.push_back(m);
  }
  r.stop = StopReason::kFull;
  r.seed = 2015;
  return r;
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() { set_log_level(LogLevel::kOff); }
};

// ---------------------------------------------------------------------------
// On-disk round-trips

TEST_F(StoreTest, RecordsSurviveReopenBitForBit) {
  const std::string dir = temp_dir("roundtrip");
  auto store = ResultStore::open(dir);
  const StoreRecord original = make_record(1, 2, 3, 1234.5678901234567);
  store->put(original);
  store->put(make_record(1, 2, 4, 999.25));
  store.reset();  // close

  auto reopened = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(reopened->stats().records, 2);
  EXPECT_EQ(reopened->stats().dropped, 0);
  const StoreRecord* loaded = reopened->lookup(original.key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->workload, original.workload);
  EXPECT_EQ(loaded->command_line, original.command_line);
  EXPECT_EQ(loaded->objective_value, original.objective_value);
  EXPECT_EQ(loaded->times_ms, original.times_ms);  // %.17g: bit-exact
  EXPECT_EQ(loaded->stop, original.stop);
  EXPECT_EQ(loaded->seed, original.seed);
  ASSERT_EQ(loaded->rep_metrics.size(), original.rep_metrics.size());
  for (std::size_t i = 0; i < loaded->rep_metrics.size(); ++i) {
    EXPECT_EQ(loaded->rep_metrics[i][MetricId::kThroughput],
              original.rep_metrics[i][MetricId::kThroughput]);
  }

  const Measurement m = loaded->to_measurement();
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(m.times_ms, original.times_ms);
  EXPECT_EQ(m.stop, StopReason::kFull);
}

TEST_F(StoreTest, TopKRanksByObjectiveAndDedupsUpgrades) {
  const std::string dir = temp_dir("topk");
  auto store = ResultStore::open(dir);
  store->put(make_record(1, 2, 30, 300.0));
  store->put(make_record(1, 2, 10, 100.0));
  store->put(make_record(1, 2, 20, 200.0));
  // Same key, fewer successful reps: dropped (no downgrade, no append).
  store->put(make_record(1, 2, 10, 150.0, /*reps=*/1));
  // Same key, more reps: upgrades in place.
  store->put(make_record(1, 2, 20, 190.0, /*reps=*/5));
  // A different workload under the same space must not leak in.
  store->put(make_record(1, 9, 40, 1.0));

  const auto top = store->top_k(1, 2, "run_time", 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0]->key.config_fingerprint, 10u);
  EXPECT_EQ(top[0]->objective_value, 100.0);
  EXPECT_EQ(top[1]->key.config_fingerprint, 20u);
  EXPECT_EQ(top[1]->objective_value, 190.0);  // the upgraded record
  EXPECT_EQ(top[1]->times_ms.size(), 5u);

  // The dedup holds across a reopen: the file may carry both versions,
  // the index keeps the better one.
  store.reset();
  auto reopened = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(reopened->stats().records, 4);
  const auto again = reopened->top_k(1, 2, "run_time", 10);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[1]->times_ms.size(), 5u);
}

TEST_F(StoreTest, NeighborsRankOtherWorkloadsByDescriptorDistance) {
  const std::string dir = temp_dir("neighbors");
  auto store = ResultStore::open(dir);

  WorkloadSpec self = store_workload();
  WorkloadSpec near = store_workload();
  near.name = "near";
  near.total_work = 410;  // a small structural perturbation
  WorkloadSpec far = store_workload();
  far.name = "far";
  far.total_work = 50000;
  far.alloc_rate = 64 * 1024 * 1024;
  far.app_threads = 32;

  const std::uint64_t space = 7;
  const std::uint64_t self_fp = workload_fingerprint(self);
  const std::uint64_t near_fp = workload_fingerprint(near);
  const std::uint64_t far_fp = workload_fingerprint(far);
  store->put_workload(space, self);
  store->put_workload(space, near);
  store->put_workload(space, far);
  store->put(make_record(space, self_fp, 1, 100.0));
  store->put(make_record(space, near_fp, 2, 100.0));
  store->put(make_record(space, near_fp, 3, 90.0));
  store->put(make_record(space, far_fp, 4, 100.0));

  const auto ranked = store->neighbors(space, self_fp,
                                       workload_features(self), "run_time", 4);
  // Two other workloads, nearest first, best record per workload, never
  // the query workload itself.
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0]->key.workload_fingerprint, near_fp);
  EXPECT_EQ(ranked[0]->key.config_fingerprint, 3u);  // its best, not its first
  EXPECT_EQ(ranked[1]->key.workload_fingerprint, far_fp);
}

TEST_F(StoreTest, WorkloadDistanceIsInfiniteAcrossIncompatibleVectors) {
  EXPECT_EQ(workload_distance({1.0, 2.0}, {1.0, 2.0, 3.0}),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(workload_distance({1.0, 2.0}, {1.0, 2.0}), 0.0);
  // The descriptor fingerprint keys the namespace: any structural change
  // must move it.
  WorkloadSpec a = store_workload();
  WorkloadSpec b = store_workload();
  b.alloc_rate += 1;
  EXPECT_NE(workload_fingerprint(a), workload_fingerprint(b));
  // noise_sigma is infrastructure, not structure: same namespace.
  WorkloadSpec c = store_workload();
  c.noise_sigma = 0.5;
  EXPECT_EQ(workload_fingerprint(a), workload_fingerprint(c));
}

// ---------------------------------------------------------------------------
// Tolerant loading

TEST_F(StoreTest, CorruptInteriorLinesAreSkippedNotFatal) {
  const std::string dir = temp_dir("corrupt");
  auto store = ResultStore::open(dir);
  store->put(make_record(1, 2, 3, 100.0));
  store->put(make_record(1, 2, 4, 200.0));
  store.reset();

  const std::string path = dir + "/store.jsonl";
  std::string content = slurp(path);
  const std::size_t second = content.find('\n') + 1;
  // Flip a byte inside the second record's payload: CRC mismatch.
  content[second + 10] = content[second + 10] == 'x' ? 'y' : 'x';
  spit(path, content);

  auto reopened = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(reopened->stats().records, 1);
  EXPECT_EQ(reopened->stats().dropped, 1);
  EXPECT_NE(reopened->lookup({1, 2, 3, "run_time"}), nullptr);
}

TEST_F(StoreTest, TornTailIsRepairedOnWritableOpenOnly) {
  const std::string dir = temp_dir("torn");
  auto store = ResultStore::open(dir);
  store->put(make_record(1, 2, 3, 100.0));
  store->put(make_record(1, 2, 4, 200.0));
  store.reset();

  const std::string path = dir + "/store.jsonl";
  const std::string full = slurp(path);
  spit(path, full.substr(0, full.size() - 7));  // tear the last record

  // Read-only: the torn tail is dropped from the index but the file is
  // untouched (another session may still be writing it).
  auto ro = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(ro->stats().records, 1);
  EXPECT_EQ(slurp(path).size(), full.size() - 7);
  ro.reset();

  // Writable: the tail is physically truncated, then appends extend a
  // clean file.
  auto rw = ResultStore::open(dir);
  EXPECT_EQ(rw->stats().records, 1);
  rw->put(make_record(1, 2, 5, 300.0));
  rw.reset();
  auto final_store = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(final_store->stats().records, 2);
  EXPECT_EQ(final_store->stats().dropped, 0);
}

TEST_F(StoreTest, ReadOnlyOpenOfMissingStoreIsEmpty) {
  const std::string dir = temp_dir("missing");
  auto store = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(store->stats().records, 0);
  store->put(make_record(1, 2, 3, 100.0));  // silently ignored
  EXPECT_EQ(store->stats().appends, 0);
  struct stat st;
  EXPECT_NE(::stat((dir + "/store.jsonl").c_str(), &st), 0);
}

TEST_F(StoreTest, ConcurrentHandlesInterleaveAppendsWithoutTearing) {
  const std::string dir = temp_dir("concurrent");
  auto a = ResultStore::open(dir);
  auto b = ResultStore::open(dir);  // separate open-file-description
  constexpr int kPerHandle = 40;
  std::thread ta([&] {
    for (int i = 0; i < kPerHandle; ++i)
      a->put(make_record(1, 2, 1000 + static_cast<std::uint64_t>(i),
                         100.0 + i));
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerHandle; ++i)
      b->put(make_record(1, 2, 2000 + static_cast<std::uint64_t>(i),
                         200.0 + i));
  });
  ta.join();
  tb.join();
  a.reset();
  b.reset();

  auto merged = ResultStore::open(dir, {.read_only = true});
  EXPECT_EQ(merged->stats().records, 2 * kPerHandle);
  EXPECT_EQ(merged->stats().dropped, 0);
}

// ---------------------------------------------------------------------------
// Runner integration: read-through / write-behind

TEST_F(StoreTest, RunnerAnswersRepeatConfigsFromStoreAtZeroBudget) {
  const std::string dir = temp_dir("runner");
  const WorkloadSpec workload = store_workload();
  JvmSimulator sim;
  Configuration config(FlagRegistry::hotspot());
  config.set_int("NewRatio", 3);

  RunnerOptions producer_options;
  producer_options.store = ResultStore::open(dir);
  BenchmarkRunner producer(sim, workload, producer_options);
  BudgetClock producer_budget(SimTime::minutes(100));
  const Measurement first = producer.measure(config, &producer_budget);
  ASSERT_TRUE(first.valid());
  EXPECT_EQ(producer.store_appends(), 1);
  EXPECT_EQ(producer.store_hits(), 0);
  const SimTime paid = producer_budget.spent();
  EXPECT_GT(paid, SimTime::zero());

  // A fresh runner with a fresh handle on the same directory: the repeat
  // is answered from the store, bit for bit, at zero budget.
  RunnerOptions consumer_options;
  consumer_options.store = ResultStore::open(dir);
  BenchmarkRunner consumer(sim, workload, consumer_options);
  BudgetClock consumer_budget(SimTime::minutes(100));
  const Measurement replayed = consumer.measure(config, &consumer_budget);
  EXPECT_EQ(consumer.store_hits(), 1);
  EXPECT_EQ(consumer.runs_executed(), 0);
  EXPECT_EQ(consumer_budget.spent(), SimTime::zero());
  EXPECT_EQ(replayed.times_ms, first.times_ms);
  EXPECT_EQ(replayed.stop, first.stop);

  // The second query of the same config hits the in-memory cache (normal
  // lookup overhead), not the store again: no infinite free lunch.
  const Measurement cached = consumer.measure(config, &consumer_budget);
  EXPECT_EQ(consumer.store_hits(), 1);
  EXPECT_EQ(cached.times_ms, first.times_ms);
  EXPECT_GT(consumer_budget.spent(), SimTime::zero());

  // Nothing got re-appended: the store already holds an equal-quality
  // record for this key.
  EXPECT_EQ(consumer.store_appends(), 0);
}

TEST_F(StoreTest, NoStoreReadsPublishesButNeverAnswers) {
  const std::string dir = temp_dir("writeonly");
  const WorkloadSpec workload = store_workload();
  JvmSimulator sim;
  Configuration config(FlagRegistry::hotspot());
  config.set_int("NewRatio", 2);
  {
    RunnerOptions options;
    options.store = ResultStore::open(dir);
    BenchmarkRunner runner(sim, workload, options);
    runner.measure(config, nullptr);
  }
  RunnerOptions options;
  options.store = ResultStore::open(dir);
  options.store_reads = false;
  BenchmarkRunner runner(sim, workload, options);
  BudgetClock budget(SimTime::minutes(100));
  runner.measure(config, &budget);
  EXPECT_EQ(runner.store_hits(), 0);
  EXPECT_GT(budget.spent(), SimTime::zero());
  EXPECT_GT(runner.runs_executed(), 0);
}

// ---------------------------------------------------------------------------
// Session integration: warm-start transfer

SessionOptions store_session_options(std::uint64_t seed = 77) {
  SessionOptions options;
  options.budget = SimTime::minutes(12);
  options.seed = seed;
  // Single repetitions keep each measurement atomic against
  // mid-measurement budget expiry — the documented precondition for exact
  // cross-arm bit-identity (see tuner/strategy.hpp and test_scheduler).
  options.repetitions = 1;
  return options;
}

// The acceptance criterion: a warm-started second session on the same
// workload and seed reaches the cold session's final incumbent objective
// using at least 25% fewer charged evaluations (store hits charge zero
// budget and are excluded from the charged count).
TEST_F(StoreTest, WarmSessionReachesColdIncumbentWithAtLeastQuarterFewerCharges) {
  const std::string dir = temp_dir("warm");
  const WorkloadSpec workload = store_workload();
  JvmSimulator sim;

  SessionOptions cold_options = store_session_options();
  cold_options.store = ResultStore::open(dir);
  TuningSession cold_session(sim, workload, cold_options);
  HierarchicalTuner cold_tuner;
  const TuningOutcome cold = cold_session.run(cold_tuner);
  ASSERT_GT(cold.charged_evaluations, 4);
  ASSERT_GT(cold.store_appends, 0);
  cold_options.store.reset();

  // Same workload, same seed, a fresh store handle (picks up the cold
  // session's appends), and a deliberately smaller budget: the warm seeds
  // and store hits must carry it to the cold incumbent regardless.
  SessionOptions warm_options = store_session_options();
  warm_options.budget = cold.budget_spent * 0.5;
  warm_options.store = ResultStore::open(dir);
  warm_options.warm_start = 5;
  TuningSession warm_session(sim, workload, warm_options);
  HierarchicalTuner warm_tuner;
  const TuningOutcome warm = warm_session.run(warm_tuner);

  EXPECT_GT(warm.warm_seeds, 0);
  EXPECT_GT(warm.store_hits, 0);
  // Reaches (or beats) the cold session's final incumbent objective...
  EXPECT_LE(warm.best_ms, cold.best_ms);
  // ...with >= 25% fewer charged evaluations.
  EXPECT_LE(warm.charged_evaluations,
            (cold.charged_evaluations * 3) / 4)
      << "cold charged " << cold.charged_evaluations << ", warm charged "
      << warm.charged_evaluations;
}

TEST_F(StoreTest, WarmSeedsComeFromJournalOnResumeNotFromTheStore) {
  const std::string dir = temp_dir("resume");
  const WorkloadSpec workload = store_workload();
  JvmSimulator sim;

  // Seed the store with a cold session.
  {
    SessionOptions cold_options = store_session_options();
    cold_options.store = ResultStore::open(dir);
    TuningSession session(sim, workload, cold_options);
    HierarchicalTuner tuner;
    session.run(tuner);
  }

  // A journaled warm session.
  const std::string journal_path =
      ::testing::TempDir() + "jat_store_resume.jsonl";
  SessionOptions warm_options = store_session_options();
  warm_options.store = ResultStore::open(dir);
  warm_options.warm_start = 3;
  std::optional<TuningOutcome> warm;
  {
    SessionJournal journal = SessionJournal::create(journal_path);
    warm_options.journal = &journal;
    TuningSession session(sim, workload, warm_options);
    HierarchicalTuner tuner;
    warm.emplace(session.run(tuner));
    EXPECT_GT(warm->warm_seeds, 0);
  }

  // Resume the (completed) journal against a store whose contents have
  // since GROWN — the warm session's appends landed, plus everything the
  // warm run discovered. Seeds are replayed from the journal, so the
  // outcome must not move.
  SessionOptions resume_options = store_session_options();
  resume_options.store = ResultStore::open(dir);
  resume_options.warm_start = 3;
  SessionJournal resumed_journal = SessionJournal::resume(journal_path);
  TuningSession resume_session(sim, workload, resume_options);
  HierarchicalTuner resume_tuner;
  const TuningOutcome resumed =
      resume_session.resume(resumed_journal, resume_tuner);
  EXPECT_EQ(resumed.best_config.fingerprint(),
            warm->best_config.fingerprint());
  EXPECT_EQ(resumed.best_ms, warm->best_ms);
  EXPECT_EQ(resumed.evaluations, warm->evaluations);
  EXPECT_EQ(resumed.warm_seeds, warm->warm_seeds);
}

// Store-enabled sessions run through the shared determinism matrix: the
// trajectory (store hits included) is invariant across pipelined
// evaluation and the forked sandbox, against a read-only store snapshot.
TEST_F(StoreTest, StoreTrajectoryInvariantAcrossExecutionArms) {
  const std::string dir = temp_dir("matrix");
  const WorkloadSpec workload = store_workload();
  JvmSimulator sim;
  {
    SessionOptions cold_options = store_session_options();
    cold_options.budget = SimTime::minutes(6);
    cold_options.store = ResultStore::open(dir);
    TuningSession session(sim, workload, cold_options);
    HierarchicalTuner tuner;
    session.run(tuner);
  }

  SessionOptions base = store_session_options();
  base.budget = SimTime::minutes(6);
  base.store = ResultStore::open(dir, {.read_only = true});
  base.warm_start = 3;
  DeterminismMatrix matrix;
  matrix.cases = {{.eval_threads = 4},
                  {.eval_threads = 0, .sandbox = true, .sandbox_workers = 2}};
  const TuningOutcome reference = run_determinism_matrix(
      sim, workload, base, [] { return std::make_unique<HierarchicalTuner>(); },
      matrix);
  EXPECT_GT(reference.store_hits, 0);
  EXPECT_GT(reference.warm_seeds, 0);
}

// Store off => nothing moved: the default trajectory stays byte-identical
// to the committed pre-store golden log and flags.
TEST_F(StoreTest, StoreDisabledSessionMatchesGoldenByteForByte) {
  set_log_level(LogLevel::kError);
  JvmSimulator sim;
  SessionOptions options;  // store defaults to null
  options.budget = SimTime::minutes(20);
  options.seed = 7;
  TuningSession session(sim, find_workload("startup.serial"), options);
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  EXPECT_EQ(outcome.store_hits, 0);
  EXPECT_EQ(outcome.store_appends, 0);
  EXPECT_EQ(outcome.warm_seeds, 0);

  const std::string csv_path = ::testing::TempDir() + "jat_store_golden.csv";
  ASSERT_TRUE(outcome.db->save_csv(csv_path));
  const std::string golden =
      slurp(std::string(JAT_GOLDEN_DIR) + "/run_time_eval_log.csv");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(slurp(csv_path), golden);

  const std::string flags_path =
      ::testing::TempDir() + "jat_store_golden.flags";
  ASSERT_TRUE(save_configuration(outcome.best_config, flags_path));
  EXPECT_EQ(slurp(flags_path),
            slurp(std::string(JAT_GOLDEN_DIR) + "/run_time_session.flags"));
  set_log_level(LogLevel::kOff);
}

}  // namespace
}  // namespace jat
