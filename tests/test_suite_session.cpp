#include "tuner/suite_session.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

#include "support/log.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

WorkloadSpec mini(const char* name, double alloc_kib, int methods) {
  WorkloadSpec w;
  w.name = name;
  w.total_work = 400;
  w.startup_work = 80;
  w.startup_classes = 1200;
  w.alloc_rate = alloc_kib * 1024;
  w.method_count = methods;
  w.noise_sigma = 0.01;
  return w;
}

class SuiteSessionTest : public ::testing::Test {
 protected:
  SuiteSessionTest() { set_log_level(LogLevel::kWarn); }
  JvmSimulator sim_;

  std::vector<WorkloadSpec> mini_suite() {
    return {mini("mini-alloc", 900, 2500), mini("mini-code", 150, 9000),
            mini("mini-flat", 300, 4000)};
  }
};

TEST_F(SuiteSessionTest, DefaultsScoreExactlyOneThousand) {
  SuiteRunner runner(sim_, mini_suite());
  const Measurement m =
      runner.measure(Configuration(FlagRegistry::hotspot()), nullptr);
  ASSERT_TRUE(m.valid());
  EXPECT_NEAR(m.objective(), 1000.0, 1e-6);
}

TEST_F(SuiteSessionTest, EmptySuiteRejected) {
  EXPECT_THROW(SuiteRunner(sim_, {}), TunerError);
}

TEST_F(SuiteSessionTest, CrashOnAnyMemberCrashesTheCandidate) {
  SuiteRunner runner(sim_, mini_suite());
  Configuration bad(FlagRegistry::hotspot());
  bad.set_bool("UseG1GC", true);  // conflicting collectors
  const Measurement m = runner.measure(bad, nullptr);
  EXPECT_TRUE(m.crashed);
}

TEST_F(SuiteSessionTest, MeasureEachReportsPerWorkloadTimes) {
  SuiteRunner runner(sim_, mini_suite());
  const auto times = runner.measure_each(Configuration(FlagRegistry::hotspot()),
                                         nullptr);
  ASSERT_EQ(times.size(), 3u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_TRUE(std::isfinite(times[i]));
    EXPECT_NEAR(times[i], runner.default_times_ms()[i], 1e-9);
  }
}

TEST_F(SuiteSessionTest, BudgetChargedAcrossMembers) {
  SuiteRunner runner(sim_, mini_suite());
  BudgetClock budget(SimTime::minutes(1000));
  Configuration c(FlagRegistry::hotspot());
  c.set_int("NewRatio", 3);  // cache miss: actually runs
  runner.measure(c, &budget);
  // 3 workloads x 3 reps x (run + 2 s overhead).
  EXPECT_GT(budget.spent(), SimTime::seconds(18));
}

TEST_F(SuiteSessionTest, GeneralTuningImprovesTheGeomean) {
  SessionOptions options;
  options.budget = SimTime::minutes(45);
  options.repetitions = 2;
  SuiteTuningSession session(sim_, mini_suite(), options);
  HierarchicalTuner tuner;
  const SuiteOutcome outcome = session.run(tuner);

  EXPECT_LE(outcome.geomean_ratio, 1.0);
  EXPECT_GE(outcome.improvement_frac(), 0.0);
  ASSERT_EQ(outcome.per_workload_improvement.size(), 3u);
  ASSERT_EQ(outcome.workload_names.size(), 3u);
  EXPECT_EQ(outcome.workload_names[0], "mini-alloc");
  EXPECT_GT(outcome.evaluations, 1);
  ASSERT_NE(outcome.db, nullptr);
}

TEST_F(SuiteSessionTest, GeomeanConsistentWithPerWorkloadImprovements) {
  SessionOptions options;
  options.budget = SimTime::minutes(45);
  options.repetitions = 2;
  SuiteTuningSession session(sim_, mini_suite(), options);
  HierarchicalTuner tuner;
  const SuiteOutcome outcome = session.run(tuner);

  double log_sum = 0;
  for (double improvement : outcome.per_workload_improvement) {
    log_sum += std::log(1.0 - improvement);
  }
  const double recomputed =
      std::exp(log_sum / static_cast<double>(outcome.per_workload_improvement.size()));
  EXPECT_NEAR(outcome.geomean_ratio, recomputed, 1e-9);
}

TEST_F(SuiteSessionTest, DeterministicAcrossRuns) {
  SessionOptions options;
  options.budget = SimTime::minutes(20);
  options.repetitions = 2;
  SuiteTuningSession s1(sim_, mini_suite(), options);
  SuiteTuningSession s2(sim_, mini_suite(), options);
  HillClimber t1;
  HillClimber t2;
  const SuiteOutcome a = s1.run(t1);
  const SuiteOutcome b = s2.run(t2);
  EXPECT_EQ(a.geomean_ratio, b.geomean_ratio);
  EXPECT_EQ(a.best_config.fingerprint(), b.best_config.fingerprint());
}

}  // namespace
}  // namespace jat
