#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace jat {
namespace {

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, RowArityMismatchRejected) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, RenderContainsHeaderRuleAndRows) {
  TextTable t({"program", "time"});
  t.add_row({"h2", "123"});
  const std::string out = t.render();
  EXPECT_NE(out.find("program"), std::string::npos);
  EXPECT_NE(out.find("-------"), std::string::npos);
  EXPECT_NE(out.find("h2"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t({"name", "value"});
  t.add_row({"x", "7"});
  t.add_row({"y", "12345"});
  const std::string out = t.render();
  // "7" padded to the width of "12345" => preceded by spaces.
  EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "line\nbreak"});
  std::ostringstream out;
  t.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
}

TEST(TextTable, AccessorsReturnStoredData) {
  TextTable t({"h1", "h2", "h3"});
  t.add_row({"x", "y", "z"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.header()[2], "h3");
  EXPECT_EQ(t.row(0)[1], "y");
}

TEST(CsvQuote, PassesPlainCellsThrough) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote(""), "");
  EXPECT_EQ(csv_quote("with space"), "with space");
}

TEST(CsvQuote, QuotesSpecialCharacters) {
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_quote("cr\rhere"), "\"cr\rhere\"");
}

TEST(ParseCsv, PlainRecords) {
  std::istringstream in("a,b,c\n1,2,3\n");
  const auto rows = parse_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsv, QuotedFieldsWithCommasQuotesAndNewlines) {
  std::istringstream in("\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\nx,,z\n");
  const auto rows = parse_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"a,b", "say \"hi\"", "two\nlines"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x", "", "z"}));
}

TEST(ParseCsv, CrLfAndMissingTrailingNewline) {
  std::istringstream in("a,b\r\nc,d");
  const auto rows = parse_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, UnterminatedQuoteRejected) {
  std::istringstream in("\"never closed\n");
  EXPECT_THROW(parse_csv(in), Error);
}

// Round trip: hostile cells survive write_csv -> parse_csv byte-exact.
TEST(ParseCsv, RoundTripsHostileCells) {
  TextTable t({"name", "payload"});
  const std::vector<std::vector<std::string>> hostile = {
      {"commas", "a,b,,c"},
      {"quotes", "\"\"nested \"quotes\"\"\""},
      {"newline", "first\nsecond\nthird"},
      {"mixed", "x,\"y\"\nz,"},
      {"empty", ""},
  };
  for (const auto& row : hostile) t.add_row(row);
  std::stringstream io;
  t.write_csv(io);
  const auto rows = parse_csv(io);
  ASSERT_EQ(rows.size(), hostile.size() + 1);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "payload"}));
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(rows[i + 1], hostile[i]) << "row " << i;
  }
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-12345), "-12,345");
}

}  // namespace
}  // namespace jat
