#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace jat {
namespace {

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, RowArityMismatchRejected) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, RenderContainsHeaderRuleAndRows) {
  TextTable t({"program", "time"});
  t.add_row({"h2", "123"});
  const std::string out = t.render();
  EXPECT_NE(out.find("program"), std::string::npos);
  EXPECT_NE(out.find("-------"), std::string::npos);
  EXPECT_NE(out.find("h2"), std::string::npos);
  EXPECT_NE(out.find("123"), std::string::npos);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t({"name", "value"});
  t.add_row({"x", "7"});
  t.add_row({"y", "12345"});
  const std::string out = t.render();
  // "7" padded to the width of "12345" => preceded by spaces.
  EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "line\nbreak"});
  std::ostringstream out;
  t.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
}

TEST(TextTable, AccessorsReturnStoredData) {
  TextTable t({"h1", "h2", "h3"});
  t.add_row({"x", "y", "z"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.header()[2], "h3");
  EXPECT_EQ(t.row(0)[1], "y");
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-12345), "-12,345");
}

}  // namespace
}  // namespace jat
