#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace jat {
namespace {

TEST(ThreadPool, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("13");
                                   ++completed;
                                 }),
               std::runtime_error);
  // The other tasks still ran to completion (no cancellation).
  EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, ManyConcurrentSubmissions) {
  ThreadPool pool(8);
  std::vector<std::future<int>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long long total = 0;
  for (auto& f : futures) total += f.get();
  long long expected = 0;
  for (int i = 0; i < 500; ++i) expected += static_cast<long long>(i) * i;
  EXPECT_EQ(total, expected);
}

// Regression: parallel_for from inside a pool worker used to deadlock once
// every worker was parked waiting on inner futures nobody could run. Nested
// calls now execute inline on the calling worker.
TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);  // fewer workers than outer tasks forces saturation
  std::vector<std::atomic<int>> visits(16);
  pool.parallel_for(4, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(4, [&](std::size_t inner) {
      ++visits[outer * 4 + inner];
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t) {
                                   pool.parallel_for(4, [](std::size_t i) {
                                     if (i == 2) throw std::runtime_error("x");
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, OnWorkerThreadFalseOutsidePool) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.on_worker_thread());
  // A worker of one pool is not "on" another pool.
  auto f = other.submit([&pool, &other] {
    return !pool.on_worker_thread() && other.on_worker_thread();
  });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace jat
