// Tests for the tracing layer: event/metrics primitives, the JSONL dialect,
// schema validation of everything a real session emits, and the headline
// guarantee — a session's outcome is reconstructible from its trace alone.
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/trace_analysis.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "tuner/session.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- TraceEvent --------------------------------------------------------------

TEST(TraceEvent, BuilderAndTypedGetters) {
  const TraceEvent e = TraceEvent("eval", SimTime::seconds(3))
                           .with("count", std::int64_t{7})
                           .with("ms", 12.5)
                           .with("name", std::string("subtree"))
                           .with("ok", true);
  EXPECT_EQ(e.type, "eval");
  EXPECT_EQ(e.at, SimTime::seconds(3));
  EXPECT_TRUE(e.has("count"));
  EXPECT_FALSE(e.has("missing"));
  EXPECT_EQ(e.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(e.get_double("ms"), 12.5);
  EXPECT_EQ(e.get_string("name"), "subtree");
  EXPECT_TRUE(e.get_bool("ok"));
  // Fallbacks for absent keys.
  EXPECT_EQ(e.get_int("missing", -1), -1);
  EXPECT_EQ(e.get_string("missing", "x"), "x");
}

TEST(TraceEvent, LenientNumericConversions) {
  const TraceEvent e = TraceEvent("x")
                           .with("i", std::int64_t{5})
                           .with("d", 2.0)
                           .with("inf", std::string("inf"))
                           .with("ninf", std::string("-inf"))
                           .with("nan", std::string("nan"));
  EXPECT_DOUBLE_EQ(e.get_double("i"), 5.0);  // int reads as double
  EXPECT_EQ(e.get_int("d"), 2);              // double reads as int
  EXPECT_EQ(e.get_double("inf"), kInf);
  EXPECT_EQ(e.get_double("ninf"), -kInf);
  EXPECT_TRUE(std::isnan(e.get_double("nan")));
}

TEST(FingerprintHex, RoundTripsThroughStrings) {
  EXPECT_EQ(fingerprint_hex(0), "0x0000000000000000");
  EXPECT_EQ(fingerprint_hex(0xdeadbeefcafebabeULL), "0xdeadbeefcafebabe");
}

// ---- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, CountersAndGauges) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("evals"), 0);
  m.add("evals");
  m.add("evals", 4);
  m.set_gauge("best_ms", 120.5);
  m.set_gauge("best_ms", 118.0);  // last write wins
  EXPECT_EQ(m.counter("evals"), 5);
  EXPECT_DOUBLE_EQ(m.gauge("best_ms"), 118.0);
  EXPECT_EQ(m.counters().at("evals"), 5);
  EXPECT_DOUBLE_EQ(m.gauges().at("best_ms"), 118.0);
  const std::string rendered = m.to_string();
  EXPECT_NE(rendered.find("evals=5"), std::string::npos);
  EXPECT_NE(rendered.find("best_ms"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentAddsAllLand) {
  MetricsRegistry m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) m.add("hits");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.counter("hits"), 4000);
}

// ---- TraceSink + JSONL -------------------------------------------------------

TEST(TraceSink, EmitAndFilter) {
  TraceSink sink;
  sink.emit(TraceEvent("eval").with("i", std::int64_t{0}));
  sink.emit(TraceEvent("phase").with("name", std::string("refine")));
  sink.emit(TraceEvent("eval").with("i", std::int64_t{1}));
  EXPECT_EQ(sink.size(), 3u);
  const auto evals = sink.events_of("eval");
  ASSERT_EQ(evals.size(), 2u);
  EXPECT_EQ(evals[0].get_int("i"), 0);
  EXPECT_EQ(evals[1].get_int("i"), 1);
}

TEST(TraceSink, JsonlRoundTripsAllValueShapes) {
  TraceSink sink;
  sink.emit(TraceEvent("eval", SimTime::millis(1500))
                .with("fingerprint", fingerprint_hex(0xabcdef0123456789ULL))
                .with("objective_ms", 1234.5678901234567)
                .with("attempts", std::int64_t{3})
                .with("accepted", false)
                .with("crashed", kInf)
                .with("neg", -kInf)
                .with("nan", std::nan("")));
  sink.emit(TraceEvent("note").with(
      "text", std::string("hostile \"quotes\", commas,\nnewlines\tand \\ slashes")));

  std::ostringstream out;
  sink.write_jsonl(out);
  std::istringstream in(out.str());
  const auto loaded = TraceSink::load_jsonl(in);
  ASSERT_EQ(loaded.size(), 2u);

  const TraceEvent& e = loaded[0];
  EXPECT_EQ(e.type, "eval");
  EXPECT_EQ(e.at, SimTime::millis(1500));
  EXPECT_EQ(e.get_string("fingerprint"), "0xabcdef0123456789");
  EXPECT_DOUBLE_EQ(e.get_double("objective_ms"), 1234.5678901234567);
  EXPECT_EQ(e.get_int("attempts"), 3);
  EXPECT_FALSE(e.get_bool("accepted"));
  EXPECT_EQ(e.get_double("crashed"), kInf);
  EXPECT_EQ(e.get_double("neg"), -kInf);
  EXPECT_TRUE(std::isnan(e.get_double("nan")));
  EXPECT_EQ(loaded[1].get_string("text"),
            "hostile \"quotes\", commas,\nnewlines\tand \\ slashes");
}

TEST(TraceSink, JsonlFileRoundTrip) {
  TraceSink sink;
  for (int i = 0; i < 10; ++i) {
    sink.emit(TraceEvent("eval", SimTime::seconds(i))
                  .with("i", static_cast<std::int64_t>(i)));
  }
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.jsonl";
  ASSERT_TRUE(sink.save_jsonl(path));
  const auto loaded = TraceSink::load_jsonl_file(path);
  ASSERT_EQ(loaded.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded[static_cast<std::size_t>(i)].get_int("i"), i);
    EXPECT_EQ(loaded[static_cast<std::size_t>(i)].at, SimTime::seconds(i));
  }
}

TEST(TraceSink, LoadRejectsMalformedInput) {
  std::istringstream not_json("this is not json\n");
  EXPECT_THROW(TraceSink::load_jsonl(not_json), Error);
  std::istringstream unterminated("{\"type\":\"eval\",\"s\":\"never closed\n");
  EXPECT_THROW(TraceSink::load_jsonl(unterminated), Error);
}

TEST(TraceSink, LenientLoadDropsOnlyATornFinalLine) {
  // A killed writer leaves a torn final record; the lenient loader keeps
  // the valid prefix and reports what it dropped.
  const std::string good =
      "{\"type\":\"eval\",\"t_s\":1,\"i\":0}\n"
      "{\"type\":\"eval\",\"t_s\":2,\"i\":1}\n";
  {
    std::istringstream in(good + "{\"type\":\"eval\",\"t_s\":3,\"i\":");
    std::string warning;
    const auto loaded = TraceSink::load_jsonl_lenient(in, &warning);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[1].get_int("i"), 1);
    EXPECT_NE(warning.find("truncated"), std::string::npos);
  }
  {
    // The strict loader still refuses the same input ...
    std::istringstream in(good + "{\"type\":\"eval\",\"t_s\":3,\"i\":");
    EXPECT_THROW(TraceSink::load_jsonl(in), Error);
  }
  {
    // ... and corruption *before* the final line is not forgiven by the
    // lenient one: silently skipping interior records would misreport the
    // session.
    std::istringstream in("garbage\n" + good);
    EXPECT_THROW(TraceSink::load_jsonl_lenient(in), Error);
  }
  {
    // A clean file loads without a warning.
    std::istringstream in(good);
    std::string warning;
    const auto loaded = TraceSink::load_jsonl_lenient(in, &warning);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(warning.empty());
  }
}

TEST(TraceSink, LenientFileLoadMatchesStreamBehaviour) {
  const std::string path = ::testing::TempDir() + "/trace_torn.jsonl";
  std::ofstream out(path, std::ios::trunc);
  out << "{\"type\":\"eval\",\"t_s\":1,\"i\":7}\n"
      << "{\"type\":\"eval\",\"t_s\":2,\"i\":8}";  // no terminating newline...
  out.close();
  // ... but a complete record: a final line missing only its newline parses.
  std::string warning;
  auto loaded = TraceSink::load_jsonl_file_lenient(path, &warning);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(warning.empty());

  std::ofstream torn(path, std::ios::app);
  torn << "\n{\"type\":\"ev";
  torn.close();
  loaded = TraceSink::load_jsonl_file_lenient(path, &warning);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_FALSE(warning.empty());
}

// ---- schema validation -------------------------------------------------------

TEST(TraceSchema, ValidEventPasses) {
  const TraceEvent ok = TraceEvent("baseline").with("objective_ms", 100.0);
  EXPECT_EQ(validate_trace_event(ok), "");
  // Crashed baselines carry inf, serialized as a string: still a number.
  const TraceEvent inf_ok =
      TraceEvent("baseline").with("objective_ms", std::string("inf"));
  EXPECT_EQ(validate_trace_event(inf_ok), "");
}

TEST(TraceSchema, MissingFieldAndWrongTypeRejected) {
  EXPECT_NE(validate_trace_event(TraceEvent("baseline")), "");
  const TraceEvent wrong =
      TraceEvent("baseline").with("objective_ms", std::string("fast"));
  EXPECT_NE(validate_trace_event(wrong), "");
  EXPECT_NE(validate_trace_event(TraceEvent("not_a_type")), "");
}

// ---- full-session traces -----------------------------------------------------

WorkloadSpec trace_workload() {
  WorkloadSpec w;
  w.name = "trace-test";
  w.total_work = 500;
  w.startup_work = 100;
  w.startup_classes = 1500;
  w.alloc_rate = 600 * 1024;
  w.method_count = 3000;
  w.noise_sigma = 0.01;
  return w;
}

class TraceSession : public ::testing::Test {
 protected:
  TraceSession() { set_log_level(LogLevel::kWarn); }
  JvmSimulator sim_;
};

// Every event a real session emits — through fault injection and the
// resilience layer, which exercise the retry/quarantine/breaker event
// types — validates against the documented schema.
TEST_F(TraceSession, EveryEmittedEventMatchesTheSchema) {
  TraceSink trace;
  SessionOptions options;
  // Budget large enough that the hierarchical tuner affords its structural
  // phase (it skips structural exploration on short budgets).
  options.budget = SimTime::minutes(150);
  options.repetitions = 2;
  options.seed = 99;
  options.trace = &trace;
  options.fault_injection.transient_rate = 0.2;
  options.fault_injection.deterministic_rate = 0.1;
  options.resilient = true;
  TuningSession session(sim_, trace_workload(), options);
  HierarchicalTuner tuner;
  (void)session.run(tuner);

  ASSERT_GT(trace.size(), 0u);
  for (const TraceEvent& e : trace.events()) {
    EXPECT_EQ(validate_trace_event(e), "") << to_json(e);
  }
  // The hostile harness makes the resilience event types appear.
  EXPECT_FALSE(trace.events_of("retry").empty());
  EXPECT_FALSE(trace.events_of("quarantine").empty());
  // The hierarchical tuner narrates its structure.
  EXPECT_FALSE(trace.events_of("structural_choice").empty());
  EXPECT_FALSE(trace.events_of("line_search").empty());
  EXPECT_FALSE(trace.events_of("incumbent").empty());
  // Exactly one of each session-level marker.
  EXPECT_EQ(trace.events_of("session_start").size(), 1u);
  EXPECT_EQ(trace.events_of("baseline").size(), 1u);
  EXPECT_EQ(trace.events_of("validation").size(), 1u);
  EXPECT_EQ(trace.events_of("session_end").size(), 1u);
  EXPECT_EQ(trace.events_of("metrics").size(), 1u);
}

// The headline guarantee: analyze_trace on the session's events reproduces
// the TuningOutcome numbers exactly — no ResultDb access needed.
TEST_F(TraceSession, TraceReplayReproducesTheOutcome) {
  TraceSink trace;
  SessionOptions options;
  options.budget = SimTime::minutes(20);
  options.repetitions = 2;
  options.seed = 2015;
  options.trace = &trace;
  TuningSession session(sim_, trace_workload(), options);
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);

  const std::vector<SessionTrace> sessions = analyze_trace(trace.events());
  ASSERT_EQ(sessions.size(), 1u);
  const SessionTrace& st = sessions[0];
  EXPECT_TRUE(st.complete);
  EXPECT_EQ(st.workload, outcome.workload_name);
  EXPECT_EQ(st.tuner, outcome.tuner_name);
  EXPECT_EQ(st.evaluations, outcome.evaluations);
  EXPECT_EQ(st.runs, outcome.runs);
  EXPECT_EQ(st.cache_hits, outcome.cache_hits);
  EXPECT_DOUBLE_EQ(st.default_ms, outcome.default_ms);
  EXPECT_DOUBLE_EQ(st.best_ms, outcome.best_ms);
  EXPECT_DOUBLE_EQ(st.improvement, outcome.improvement_frac());
  EXPECT_NEAR(st.budget_spent.as_seconds(), outcome.budget_spent.as_seconds(),
              1e-6);

  // The convergence staircase matches the ResultDb trajectory at every
  // checkpoint (the serial session records both from the same positions).
  for (int i = 1; i <= 10; ++i) {
    const SimTime at = outcome.budget_spent * (i / 10.0);
    const double from_trace = st.best_at(at);
    const double from_db = outcome.db->best_at(at);
    if (std::isfinite(from_db)) {
      EXPECT_DOUBLE_EQ(from_trace, from_db) << "checkpoint " << i;
    } else {
      EXPECT_FALSE(std::isfinite(from_trace)) << "checkpoint " << i;
    }
  }

  // Phase budget attribution is exhaustive: per-phase evals and budget sum
  // to the session totals.
  std::int64_t phase_evals = 0;
  SimTime phase_budget = SimTime::zero();
  for (const PhaseBudget& p : st.phase_budgets) {
    phase_evals += p.evaluations;
    phase_budget += p.spent;
  }
  EXPECT_EQ(phase_evals, st.evaluations);
  EXPECT_GT(st.phase_budgets.size(), 1u);  // default + tuner phases

  // And the whole thing survives a JSONL round trip.
  const std::string path = ::testing::TempDir() + "/session_trace.jsonl";
  ASSERT_TRUE(trace.save_jsonl(path));
  const auto reloaded = analyze_trace(TraceSink::load_jsonl_file(path));
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded[0].evaluations, st.evaluations);
  EXPECT_DOUBLE_EQ(reloaded[0].best_ms, st.best_ms);
  EXPECT_DOUBLE_EQ(reloaded[0].default_ms, st.default_ms);
  EXPECT_EQ(reloaded[0].convergence.size(), st.convergence.size());
  for (std::size_t i = 0; i < st.convergence.size(); ++i) {
    EXPECT_EQ(reloaded[0].convergence[i].first, st.convergence[i].first);
    EXPECT_DOUBLE_EQ(reloaded[0].convergence[i].second,
                     st.convergence[i].second);
  }

  // render smoke: the report names the session and its phases.
  const std::string report = render_trace_report(reloaded);
  EXPECT_NE(report.find("trace-test"), std::string::npos);
  EXPECT_NE(report.find("hierarchical"), std::string::npos);
  EXPECT_NE(report.find("per-phase budget attribution"), std::string::npos);
}

// Two sessions in one sink split cleanly on session_start boundaries.
TEST_F(TraceSession, MultipleSessionsSplit) {
  TraceSink trace;
  SessionOptions options;
  options.budget = SimTime::minutes(6);
  options.repetitions = 1;
  options.trace = &trace;
  TuningSession session(sim_, trace_workload(), options);
  RandomSearch t1(0.15);
  HillClimber t2;
  (void)session.run(t1);
  (void)session.run(t2);
  const auto sessions = analyze_trace(trace.events());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].tuner, "random");
  EXPECT_EQ(sessions[1].tuner, "hillclimb");
  EXPECT_TRUE(sessions[0].complete);
  EXPECT_TRUE(sessions[1].complete);
}

}  // namespace
}  // namespace jat
