#include "tuner/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/log.hpp"
#include "workloads/suites.hpp"

namespace jat {
namespace {

WorkloadSpec session_workload() {
  WorkloadSpec w;
  w.name = "tuner-test";
  w.total_work = 500;
  w.startup_work = 100;
  w.startup_classes = 1500;
  w.alloc_rate = 600 * 1024;
  w.method_count = 3000;
  w.noise_sigma = 0.01;
  return w;
}

SessionOptions quick_options(double minutes = 20.0) {
  SessionOptions options;
  options.budget = SimTime::minutes(minutes);
  options.repetitions = 2;
  options.seed = 99;
  return options;
}

class TunerSuite : public ::testing::Test {
 protected:
  TunerSuite() { set_log_level(LogLevel::kWarn); }
  JvmSimulator sim_;
};

/// Shared assertions every tuner must satisfy.
void check_outcome(const TuningOutcome& outcome, const SessionOptions& options) {
  // Incumbent never worse than the default baseline (default is candidate 0).
  EXPECT_LE(outcome.best_ms, outcome.default_ms);
  EXPECT_GE(outcome.improvement_frac(), 0.0);
  // Budget respected up to the in-flight measurement overshoot.
  EXPECT_LE(outcome.budget_spent.as_seconds(),
            options.budget.as_seconds() * 1.2 + 120.0);
  EXPECT_GE(outcome.evaluations, 2);
  ASSERT_NE(outcome.db, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(outcome.db->size()), outcome.evaluations);
  // The best configuration is startable (crashes have infinite objective).
  EXPECT_TRUE(std::isfinite(outcome.best_ms));
}

TEST_F(TunerSuite, RandomSearch) {
  TuningSession session(sim_, session_workload(), quick_options());
  RandomSearch tuner(0.15);
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, HillClimber) {
  TuningSession session(sim_, session_workload(), quick_options());
  HillClimber tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, SimulatedAnnealing) {
  TuningSession session(sim_, session_workload(), quick_options());
  SimulatedAnnealing tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, GeneticTuner) {
  TuningSession session(sim_, session_workload(), quick_options());
  GeneticTuner tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, BanditEnsemble) {
  TuningSession session(sim_, session_workload(), quick_options());
  BanditEnsemble tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, HierarchicalTuner) {
  TuningSession session(sim_, session_workload(), quick_options());
  HierarchicalTuner tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, IteratedLocalSearch) {
  TuningSession session(sim_, session_workload(), quick_options());
  IteratedLocalSearch tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, SubsetTuner) {
  TuningSession session(sim_, session_workload(), quick_options());
  SubsetTuner tuner;
  check_outcome(session.run(tuner), quick_options());
}

TEST_F(TunerSuite, FlatVariantsSurviveFatalCandidates) {
  TuningSession session(sim_, session_workload(), quick_options(10));
  RandomSearch flat(1.0, /*flat=*/true);
  const TuningOutcome outcome = session.run(flat);
  // Flat full-density random mostly crashes, but the default baseline
  // keeps the incumbent finite.
  EXPECT_TRUE(std::isfinite(outcome.best_ms));
  EXPECT_LE(outcome.best_ms, outcome.default_ms);
}

TEST_F(TunerSuite, SerialSessionsAreDeterministic) {
  const SessionOptions options = quick_options(10);
  TuningSession s1(sim_, session_workload(), options);
  TuningSession s2(sim_, session_workload(), options);
  HierarchicalTuner t1;
  HierarchicalTuner t2;
  const TuningOutcome a = s1.run(t1);
  const TuningOutcome b = s2.run(t2);
  EXPECT_EQ(a.best_ms, b.best_ms);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_config.fingerprint(), b.best_config.fingerprint());
}

TEST_F(TunerSuite, DifferentSeedsExploreDifferently) {
  SessionOptions o1 = quick_options(10);
  SessionOptions o2 = quick_options(10);
  o2.seed = 123456;
  TuningSession s1(sim_, session_workload(), o1);
  TuningSession s2(sim_, session_workload(), o2);
  HillClimber t1;
  HillClimber t2;
  const TuningOutcome a = s1.run(t1);
  const TuningOutcome b = s2.run(t2);
  // Same workload, different random trajectories.
  EXPECT_NE(a.db->get(3).fingerprint, b.db->get(3).fingerprint);
}

TEST_F(TunerSuite, ParallelEvaluationMatchesSerialQualityClass) {
  SessionOptions serial = quick_options(15);
  SessionOptions parallel = quick_options(15);
  parallel.eval_threads = 4;
  TuningSession s1(sim_, session_workload(), serial);
  TuningSession s2(sim_, session_workload(), parallel);
  GeneticTuner t1;
  GeneticTuner t2;
  const TuningOutcome a = s1.run(t1);
  const TuningOutcome b = s2.run(t2);
  // Parallel evaluation changes scheduling, not measurement semantics:
  // both must land at a finite improvement over the same baseline.
  EXPECT_EQ(a.default_ms, b.default_ms);
  EXPECT_TRUE(std::isfinite(b.best_ms));
  EXPECT_LE(b.best_ms, b.default_ms);
}

// Regression: with eval_threads > 0 the incumbent used to depend on batch
// completion order — equal-objective candidates tie-broke on arrival, so a
// parallel session could report a different best_config than the serial
// session with the same seed. TuningContext now reduces batches with a
// lexicographic (objective, fingerprint) minimum, which is commutative, so
// scheduling cannot change the outcome. Single repetitions keep each
// measurement atomic against mid-measurement budget expiry, which is the
// one remaining (documented) interleaving dependence.
TEST_F(TunerSuite, EvalThreadsDoNotChangeTheOutcome) {
  for (std::uint64_t seed : {99ull, 7ull, 2015ull}) {
    SessionOptions serial = quick_options(12);
    serial.repetitions = 1;
    serial.seed = seed;
    SessionOptions parallel = serial;
    parallel.eval_threads = 4;
    TuningSession s1(sim_, session_workload(), serial);
    TuningSession s2(sim_, session_workload(), parallel);
    GeneticTuner t1;
    GeneticTuner t2;
    const TuningOutcome a = s1.run(t1);
    const TuningOutcome b = s2.run(t2);
    EXPECT_EQ(a.best_config.fingerprint(), b.best_config.fingerprint())
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(a.default_ms, b.default_ms) << "seed " << seed;
    EXPECT_DOUBLE_EQ(a.best_ms, b.best_ms) << "seed " << seed;
    EXPECT_EQ(a.evaluations, b.evaluations) << "seed " << seed;
  }
}

TEST_F(TunerSuite, TrajectoryIsMonotone) {
  TuningSession session(sim_, session_workload(), quick_options());
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  const auto trajectory = outcome.db->best_trajectory();
  ASSERT_FALSE(trajectory.empty());
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    EXPECT_LT(trajectory[i].second, trajectory[i - 1].second);
    EXPECT_GE(trajectory[i].first, trajectory[i - 1].first);
  }
  // The trajectory tracks *search* objectives; the outcome reports the
  // re-validated value, which differs by at most the measurement noise.
  EXPECT_EQ(trajectory.back().second, outcome.db->best_objective());
  EXPECT_NEAR(outcome.best_ms, trajectory.back().second,
              0.15 * trajectory.back().second);
}

TEST_F(TunerSuite, HierarchicalRecordsItsPhases) {
  // Budget large enough that the cost-aware guard keeps the structural
  // phase (it is skipped when the budget affords under ~200 evaluations).
  TuningSession session(sim_, session_workload(), quick_options(60));
  HierarchicalTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  std::set<std::string> phases;
  for (const auto& rec : outcome.db->all()) phases.insert(rec.phase);
  EXPECT_TRUE(phases.contains("default"));
  EXPECT_TRUE(phases.contains("structural"));
  EXPECT_TRUE(phases.contains("subtree"));
}

TEST_F(TunerSuite, SubsetTunerOnlyMovesItsSubsetPlusCollector) {
  TuningSession session(sim_, session_workload(), quick_options());
  SubsetTuner tuner;
  const TuningOutcome outcome = session.run(tuner);
  const std::set<std::string> allowed = {
      "MaxHeapSize",       "InitialHeapSize",     "NewRatio",
      "SurvivorRatio",     "MaxTenuringThreshold", "ParallelGCThreads",
      "UseSerialGC",       "UseParallelGC",        "UseConcMarkSweepGC",
      "UseParNewGC",       "UseG1GC",
      // repair() may clamp these dependents of the subset flags:
      "InitialTenuringThreshold"};
  for (FlagId id : outcome.best_config.changed_flags()) {
    const std::string& name =
        outcome.best_config.registry().spec(id).name;
    EXPECT_TRUE(allowed.contains(name)) << name;
  }
}

TEST_F(TunerSuite, LargerBudgetNeverHurts) {
  TuningSession small(sim_, session_workload(), quick_options(5));
  TuningSession large(sim_, session_workload(), quick_options(40));
  HierarchicalTuner t1;
  HierarchicalTuner t2;
  const double small_best = small.run(t1).best_ms;
  const double large_best = large.run(t2).best_ms;
  // Same seed: the large-budget run replays the small run's prefix.
  EXPECT_LE(large_best, small_best * 1.15);
}

TEST_F(TunerSuite, TunerNames) {
  EXPECT_EQ(RandomSearch().name(), "random");
  EXPECT_EQ(RandomSearch(1.0, true).name(), "random-flat");
  EXPECT_EQ(HillClimber().name(), "hillclimb");
  EXPECT_EQ(SimulatedAnnealing().name(), "annealing");
  EXPECT_EQ(GeneticTuner().name(), "genetic");
  EXPECT_EQ(BanditEnsemble().name(), "bandit");
  EXPECT_EQ(IteratedLocalSearch().name(), "ils");
  EXPECT_EQ(HierarchicalTuner().name(), "hierarchical");
  EXPECT_EQ(SubsetTuner().name(), "subset");
  HierarchicalTuner::Options ungated;
  ungated.gate_subtrees = false;
  EXPECT_EQ(HierarchicalTuner(ungated).name(), "hierarchical-ungated");
}

}  // namespace
}  // namespace jat
