#include "support/units.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace jat {
namespace {

TEST(FormatBytes, ExactMultiplesUseSuffix) {
  EXPECT_EQ(format_bytes(0), "0");
  EXPECT_EQ(format_bytes(1024), "1k");
  EXPECT_EQ(format_bytes(512 * kMiB), "512m");
  EXPECT_EQ(format_bytes(4 * kGiB), "4g");
  EXPECT_EQ(format_bytes(2496 * kKiB), "2496k");
}

TEST(FormatBytes, NonMultiplesStayRaw) {
  EXPECT_EQ(format_bytes(1000), "1000");
  EXPECT_EQ(format_bytes(1025), "1025");
}

TEST(ParseBytes, Suffixes) {
  EXPECT_EQ(parse_bytes("64k"), 64 * kKiB);
  EXPECT_EQ(parse_bytes("512M"), 512 * kMiB);
  EXPECT_EQ(parse_bytes("4g"), 4 * kGiB);
  EXPECT_EQ(parse_bytes("1T"), kGiB * 1024);
  EXPECT_EQ(parse_bytes("12345"), 12345);
}

TEST(ParseBytes, RoundTripsFormat) {
  for (std::int64_t v : {std::int64_t{1024}, 16 * kMiB, 3 * kGiB, std::int64_t{777}}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)), v);
  }
}

TEST(ParseBytes, RejectsMalformedInput) {
  EXPECT_THROW(parse_bytes(""), FlagError);
  EXPECT_THROW(parse_bytes("k"), FlagError);
  EXPECT_THROW(parse_bytes("12x3"), FlagError);
  EXPECT_THROW(parse_bytes("-5m"), FlagError);
  EXPECT_THROW(parse_bytes("1.5g"), FlagError);
}

TEST(ParseBytes, RejectsOverflow) {
  EXPECT_THROW(parse_bytes("99999999999999999999999"), FlagError);
}

TEST(FormatPercent, Rendering) {
  EXPECT_EQ(format_percent(0.193), "19.3%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
  EXPECT_EQ(format_percent(-0.05), "-5.0%");
}

}  // namespace
}  // namespace jat
