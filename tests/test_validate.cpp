#include "flags/validate.hpp"

#include <gtest/gtest.h>

#include "support/units.hpp"

namespace jat {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  Configuration config_{FlagRegistry::hotspot()};

  bool has_fatal() const { return !is_startable(config_); }

  bool has_violation_mentioning(const std::string& needle) const {
    for (const auto& v : validate(config_)) {
      if (v.message.find(needle) != std::string::npos ||
          v.flag.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

TEST_F(ValidateTest, DefaultConfigurationIsStartable) {
  EXPECT_TRUE(is_startable(config_));
  EXPECT_EQ(first_fatal(config_), "");
}

TEST_F(ValidateTest, ConflictingCollectorsAreFatal) {
  config_.set_bool("UseG1GC", true);  // UseParallelGC still true
  EXPECT_TRUE(has_fatal());
  EXPECT_TRUE(has_violation_mentioning("conflicting collector"));
}

TEST_F(ValidateTest, SingleCollectorSwitchIsFine) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseG1GC", true);
  EXPECT_TRUE(is_startable(config_));
}

TEST_F(ValidateTest, NoCollectorIsOnlyAWarning) {
  config_.set_bool("UseParallelGC", false);
  EXPECT_TRUE(is_startable(config_));
  EXPECT_FALSE(validate(config_).empty());
}

TEST_F(ValidateTest, ParNewWithoutCmsIsFatal) {
  config_.set_bool("UseParNewGC", true);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, ParNewWithCmsIsFine) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseConcMarkSweepGC", true);
  config_.set_bool("UseParNewGC", true);
  EXPECT_TRUE(is_startable(config_));
}

TEST_F(ValidateTest, ParallelOldWithoutParallelIsWarningOnly) {
  config_.set_bool("UseParallelGC", false);
  config_.set_bool("UseSerialGC", true);
  // UseParallelOldGC defaults true; with Serial selected it is inert.
  EXPECT_TRUE(is_startable(config_));
  EXPECT_TRUE(has_violation_mentioning("UseParallelOldGC"));
}

TEST_F(ValidateTest, InitialHeapAboveMaxIsFatal) {
  config_.set_int("MaxHeapSize", 256 * kMiB);
  config_.set_int("InitialHeapSize", 512 * kMiB);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, YoungLargerThanHeapIsFatal) {
  config_.set_int("MaxHeapSize", 128 * kMiB);
  config_.set_int("InitialHeapSize", 64 * kMiB);
  config_.set_int("NewSize", 512 * kMiB);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, NewSizeAboveMaxNewSizeIsWarning) {
  config_.set_int("NewSize", 256 * kMiB);
  config_.set_int("MaxNewSize", 128 * kMiB);
  EXPECT_TRUE(is_startable(config_));
  EXPECT_TRUE(has_violation_mentioning("MaxNewSize"));
}

TEST_F(ValidateTest, InvertedHeapFreeRatiosAreFatal) {
  config_.set_int("MinHeapFreeRatio", 80);
  config_.set_int("MaxHeapFreeRatio", 20);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, InvertedTenuringThresholdsAreFatal) {
  config_.set_int("InitialTenuringThreshold", 10);
  config_.set_int("MaxTenuringThreshold", 5);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, MetaspaceAboveMaxIsWarning) {
  config_.set_int("MetaspaceSize", 256 * kMiB);
  config_.set_int("MaxMetaspaceSize", 64 * kMiB);
  EXPECT_TRUE(is_startable(config_));
  EXPECT_TRUE(has_violation_mentioning("Metaspace"));
}

TEST_F(ValidateTest, NonPowerOfTwoG1RegionIsFatal) {
  config_.set_int("G1HeapRegionSize", 3 * kMiB);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, PowerOfTwoG1RegionIsFine) {
  config_.set_int("G1HeapRegionSize", 4 * kMiB);
  EXPECT_TRUE(is_startable(config_));
}

TEST_F(ValidateTest, InvertedG1NewSizePercentsAreFatal) {
  config_.set_int("G1NewSizePercent", 50);
  config_.set_int("G1MaxNewSizePercent", 20);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, CmsPrecleanRatioConstraint) {
  config_.set_int("CMSPrecleanNumerator", 10);
  config_.set_int("CMSPrecleanDenominator", 5);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, CodeCacheInversionIsFatal) {
  config_.set_int("InitialCodeCacheSize", 32 * kMiB);
  config_.set_int("ReservedCodeCacheSize", 8 * kMiB);
  EXPECT_TRUE(has_fatal());
}

TEST_F(ValidateTest, TieredStopLevelWithoutTieredIsWarning) {
  config_.set_bool("TieredCompilation", false);
  config_.set_int("TieredStopAtLevel", 1);
  EXPECT_TRUE(is_startable(config_));
  EXPECT_TRUE(has_violation_mentioning("TieredStopAtLevel"));
}

TEST_F(ValidateTest, FirstFatalReportsTheMessage) {
  config_.set_bool("UseG1GC", true);
  EXPECT_NE(first_fatal(config_).find("conflicting"), std::string::npos);
}

}  // namespace
}  // namespace jat
