#include "workloads/suites.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace jat {
namespace {

TEST(Suites, SpecJvm2008Has16Programs) {
  EXPECT_EQ(specjvm2008_startup().size(), 16u);
}

TEST(Suites, DaCapoHas13Programs) {
  EXPECT_EQ(dacapo().size(), 13u);
}

TEST(Suites, AllNamesUniqueAcrossSuites) {
  std::set<std::string> names;
  for (const auto& w : specjvm2008_startup()) {
    EXPECT_TRUE(names.insert(w.name).second) << w.name;
  }
  for (const auto& w : dacapo()) {
    EXPECT_TRUE(names.insert(w.name).second) << w.name;
  }
}

TEST(Suites, EverySpecIsValid) {
  for (const auto& w : specjvm2008_startup()) {
    EXPECT_TRUE(w.problems().empty())
        << w.name << ": " << w.problems().front();
  }
  for (const auto& w : dacapo()) {
    EXPECT_TRUE(w.problems().empty())
        << w.name << ": " << w.problems().front();
  }
}

TEST(Suites, SuiteLabelsMatch) {
  for (const auto& w : specjvm2008_startup()) EXPECT_EQ(w.suite, "specjvm2008");
  for (const auto& w : dacapo()) EXPECT_EQ(w.suite, "dacapo");
}

TEST(Suites, StartupProgramsAreStartupHeavy) {
  for (const auto& w : specjvm2008_startup()) {
    EXPECT_GT(w.startup_work / w.total_work, 0.15) << w.name;
  }
}

TEST(Suites, SuitesAreDiverse) {
  // The evaluation depends on programs stressing different subsystems.
  bool lock_bound = false;
  bool alloc_bound = false;
  bool code_bound = false;
  bool crypto = false;
  bool vector = false;
  for (const auto& w : dacapo()) {
    lock_bound |= w.locks_per_work > 150;
    alloc_bound |= w.alloc_rate > 1.0 * 1024 * 1024;
    code_bound |= w.method_count > 15000;
  }
  for (const auto& w : specjvm2008_startup()) {
    crypto |= w.crypto_frac > 0.3;
    vector |= w.vector_frac > 0.3;
  }
  EXPECT_TRUE(lock_bound);
  EXPECT_TRUE(alloc_bound);
  EXPECT_TRUE(code_bound);
  EXPECT_TRUE(crypto);
  EXPECT_TRUE(vector);
}

TEST(FindWorkload, LooksUpAcrossSuites) {
  EXPECT_EQ(find_workload("avrora").name, "avrora");
  EXPECT_EQ(find_workload("startup.serial").suite, "specjvm2008");
  EXPECT_THROW(find_workload("nope"), Error);
}

TEST(WorkloadProblems, DetectsBadFractions) {
  WorkloadSpec w;
  w.name = "bad";
  w.short_lived_frac = 0.8;
  w.mid_lived_frac = 0.5;
  EXPECT_FALSE(w.problems().empty());
}

TEST(WorkloadProblems, DetectsNonPositiveWork) {
  WorkloadSpec w;
  w.name = "bad";
  w.total_work = 0;
  EXPECT_FALSE(w.problems().empty());
}

TEST(WorkloadProblems, DetectsStartupExceedingTotal) {
  WorkloadSpec w;
  w.name = "bad";
  w.total_work = 100;
  w.startup_work = 200;
  EXPECT_FALSE(w.problems().empty());
}

TEST(WorkloadProblems, DetectsBadSpeeds) {
  WorkloadSpec w;
  w.name = "bad";
  w.interpreter_speed = 0.0;
  EXPECT_FALSE(w.problems().empty());
  w.interpreter_speed = 0.5;
  w.c1_speed = 0.3;  // below interpreter
  EXPECT_FALSE(w.problems().empty());
}

TEST(WorkloadProblems, EmptyNameRejected) {
  WorkloadSpec w;
  EXPECT_FALSE(w.problems().empty());
}

// Property: synthetic workloads are valid and deterministic per seed.
class SyntheticSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticSweep, ValidAndDeterministic) {
  const WorkloadSpec a = make_synthetic(GetParam());
  const WorkloadSpec b = make_synthetic(GetParam());
  EXPECT_TRUE(a.problems().empty())
      << a.name << ": " << (a.problems().empty() ? "" : a.problems().front());
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.alloc_rate, b.alloc_rate);
  EXPECT_EQ(a.method_count, b.method_count);
  EXPECT_EQ(a.lock_contention, b.lock_contention);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace jat
