// jat_tune — the command-line face of the library, shaped like the tool
// the paper describes: point it at a benchmark, give it a tuning budget,
// get back a tuned -XX configuration (plus the flags that actually
// mattered).
//
//   jat_tune --workload h2 --budget 200 --tuner hierarchical
//            --out tuned.flags --explain
//   jat_tune --list
//   jat_tune --suite dacapo --budget 2000 --tuner genetic --threads 8
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "flags/parse.hpp"
#include "harness/journal.hpp"
#include "support/cancellation.hpp"
#include "support/log.hpp"
#include "support/process.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "tuner/importance.hpp"
#include "tuner/session.hpp"
#include "tuner/suite_session.hpp"
#include "workloads/suites.hpp"

namespace {

using namespace jat;

/// SIGINT/SIGTERM land here: flip the (async-signal-safe) cancellation
/// latch and let the session drain, flush, and report normally. Sandbox
/// workers get SIGTERM forwarded so they finish their current repetition
/// and reply instead of blocking the drain. A *second* SIGINT means the
/// operator wants out now: SIGKILL every worker and hard-exit nonzero —
/// everything in the handler is async-signal-safe (atomics, kill, _exit).
CancellationToken g_cancel;
volatile sig_atomic_t g_stop_signals = 0;

extern "C" void handle_stop_signal(int sig) {
  if (sig == SIGINT) {
    // ++ on volatile is deprecated in C++20; a read-modify-write is safe
    // here because SIGINT cannot preempt its own handler (not SA_NODEFER).
    g_stop_signals = g_stop_signals + 1;
    if (g_stop_signals >= 2) {
      ChildRegistry::kill_all(SIGKILL);
      _exit(130);
    }
  }
  g_cancel.cancel();
  ChildRegistry::kill_all(SIGTERM);
}

void usage() {
  std::printf(
      "jat_tune — whole-JVM auto-tuner (simulated HotSpot substrate)\n\n"
      "  --workload NAME     benchmark to tune (see --list)\n"
      "  --suite NAME        tune one general config for a whole suite\n"
      "                      (specjvm2008 | dacapo)\n"
      "  --budget MINUTES    tuning budget in simulated minutes (default 200)\n"
      "  --tuner NAME        hierarchical | random | hillclimb | annealing |\n"
      "                      genetic | bandit | ils | subset (default: hierarchical)\n"
      "  --objective SPEC    what the search minimizes: run_time (default) |\n"
      "                      startup_time | throughput | pause_max | footprint |\n"
      "                      composite[:pause_limit_ms=L,penalty=P]\n"
      "                      (see --list-objectives); non-default objectives\n"
      "                      extend the CSV log with per-metric columns\n"
      "  --list-objectives   list the built-in objectives and exit\n"
      "  --seed N            master seed (default 2015)\n"
      "  --reps N            timed repetitions per candidate (default 3)\n"
      "  --threads N         parallel candidate evaluation threads\n"
      "  --eval-threads N    alias for --threads\n"
      "  --inflight N        max evaluations in flight in the scheduler\n"
      "                      window (default 8; part of the trajectory)\n"
      "  --out FILE          write the tuned flags to FILE\n"
      "  --trace FILE        write a structured JSONL event trace to FILE\n"
      "                      (inspect with trace_report)\n"
      "  --journal FILE      write-ahead evaluation journal: every committed\n"
      "                      evaluation is durable before it is applied, so a\n"
      "                      killed session resumes with --resume\n"
      "  --resume FILE       resume a journaled session (workload, tuner,\n"
      "                      budget, seed come from the journal; the outcome\n"
      "                      is bit-identical to the uninterrupted run)\n"
      "  --log FILE          write the full evaluation log as CSV\n"
      "  --store DIR         cross-session result store: completed\n"
      "                      measurements are published to DIR/store.jsonl\n"
      "                      and later sessions answer repeat configurations\n"
      "                      from it at zero budget (safe to share between\n"
      "                      concurrent sessions; see EXPERIMENTS.md)\n"
      "  --warm-start K      replay up to K top prior configurations for this\n"
      "                      workload (plus structural neighbors from other\n"
      "                      workloads) before the tuner's first proposal\n"
      "                      (needs --store)\n"
      "  --no-store-reads    publish to the store but never read prior\n"
      "                      results back (cold-session trajectory with a\n"
      "                      warm store on disk)\n"
      "  --kill-after-evals N  raise SIGKILL after the Nth journal append\n"
      "                      (deterministic crash injection for recovery tests)\n"
      "  --replay FILE       re-measure a saved .flags file on --workload\n"
      "  --racing            abandon clearly-losing candidates after 1 rep\n"
      "  --adaptive-reps N   confidence-driven repetitions: stop a candidate\n"
      "                      early once its CI95 converges, abandon it when a\n"
      "                      Welch test says it is worse than the incumbent,\n"
      "                      cap at N reps; raced-out winners are topped up\n"
      "                      to convergence before taking the incumbency\n"
      "  --ci-rel X          CI95 half-width <= X * mean stops a candidate\n"
      "                      (default 0.02; needs --adaptive-reps)\n"
      "  --race-p P          Welch p-value below which a slower candidate is\n"
      "                      abandoned (default 0.05; needs --adaptive-reps)\n"
      "  --resilient         retry/quarantine/circuit-breaker layer between\n"
      "                      tuner and evaluator\n"
      "  --sandbox           run every measurement in a forked worker process:\n"
      "                      a crashing or wedged evaluation kills its worker,\n"
      "                      never the session (fault-free runs stay\n"
      "                      bit-identical to the in-process path)\n"
      "  --sandbox-workers N   worker pool size (default 2)\n"
      "  --eval-deadline-s S   wall-clock deadline per sandboxed evaluation;\n"
      "                      past it the worker gets SIGTERM then SIGKILL and\n"
      "                      the evaluation is classified as a timeout\n"
      "  --sandbox-rlimit-cpu S   RLIMIT_CPU seconds per worker (0 = off)\n"
      "  --sandbox-rlimit-as MB   RLIMIT_AS megabytes per worker (0 = off)\n"
      "  --sandbox-inject-kill R  fault injection: probability a worker is\n"
      "                      SIGKILLed mid-measurement (per configuration)\n"
      "  --sandbox-inject-wedge R  probability a worker wedges in a busy loop\n"
      "  --sandbox-inject-torn R   probability of a torn (truncated) reply\n"
      "  --explain           leave-one-out analysis of the winning flags\n"
      "  --verbose           per-phase progress logging\n"
      "  --list              list available workloads\n");
}

std::unique_ptr<SearchStrategy> make_tuner(const std::string& name) {
  if (name == "hierarchical") return std::make_unique<HierarchicalTuner>();
  if (name == "random") return std::make_unique<RandomSearch>(0.15);
  if (name == "hillclimb") return std::make_unique<HillClimber>();
  if (name == "annealing") return std::make_unique<SimulatedAnnealing>();
  if (name == "genetic") return std::make_unique<GeneticTuner>();
  if (name == "bandit") return std::make_unique<BanditEnsemble>();
  if (name == "ils") return std::make_unique<IteratedLocalSearch>();
  if (name == "subset") return std::make_unique<SubsetTuner>();
  return nullptr;
}

void list_workloads() {
  TextTable table({"workload", "suite", "work", "alloc/unit", "threads"});
  auto add = [&](const WorkloadSpec& w) {
    table.add_row({w.name, w.suite, fmt(w.total_work, 0),
                   format_bytes(static_cast<std::int64_t>(w.alloc_rate)),
                   std::to_string(w.app_threads)});
  };
  for (const auto& w : specjvm2008_startup()) add(w);
  for (const auto& w : dacapo()) add(w);
  std::printf("%s", table.render().c_str());
}

int tune_one(const std::string& workload_name, const SessionOptions& options,
             SearchStrategy& tuner, const std::string& out_path, bool explain,
             SessionJournal* resume_journal, const std::string& log_path) {
  JvmSimulator simulator;
  const WorkloadSpec& workload = find_workload(workload_name);
  TuningSession session(simulator, workload, options);
  const TuningOutcome outcome = resume_journal != nullptr
                                    ? session.resume(*resume_journal, tuner)
                                    : session.run(tuner);

  if (outcome.cancelled) {
    std::printf("\ninterrupted: admission closed, in-flight evaluations "
                "drained and committed; incumbent below%s\n",
                options.journal != nullptr || resume_journal != nullptr
                    ? " (resume with --resume to run out the budget)"
                    : "");
  }
  std::printf("\n%-22s %s\n", "workload", outcome.workload_name.c_str());
  std::printf("%-22s %s\n", "tuner", outcome.tuner_name.c_str());
  if (outcome.objective_id != "run_time") {
    std::printf("%-22s %s\n", "objective", outcome.objective_id.c_str());
  }
  const char* unit = options.objective ? options.objective->unit() : "ms";
  std::printf("%-22s %s %s -> %s %s  (%s, speedup %.2fx)\n", "validated result",
              fmt(outcome.default_ms, 0).c_str(), unit,
              fmt(outcome.best_ms, 0).c_str(), unit,
              format_percent(outcome.improvement_frac()).c_str(),
              outcome.speedup());
  std::printf("%-22s %lld configurations, %lld JVM runs, %s budget spent\n",
              "search", static_cast<long long>(outcome.evaluations),
              static_cast<long long>(outcome.runs),
              outcome.budget_spent.to_string().c_str());
  if (options.store != nullptr) {
    std::printf("%-22s %lld store hit(s), %lld appended, %lld warm seed(s), "
                "%lld charged evaluation(s)\n",
                "store",
                static_cast<long long>(outcome.store_hits),
                static_cast<long long>(outcome.store_appends),
                static_cast<long long>(outcome.warm_seeds),
                static_cast<long long>(outcome.charged_evaluations));
  }
  std::printf("%-22s %s\n", "tuned flags",
              outcome.best_config.changed_flags().empty()
                  ? "(defaults were best)"
                  : outcome.best_config.render_command_line().c_str());

  if (explain && !outcome.best_config.changed_flags().empty()) {
    RunnerOptions runner_options;
    runner_options.repetitions = std::max(5, options.repetitions);
    runner_options.seed = mix64(options.seed, fnv1a64("explain"));
    BenchmarkRunner runner(simulator, workload, runner_options);
    const ImportanceReport report = analyze_importance(runner, outcome.best_config);

    std::printf("\nflag contributions (leave-one-out):\n");
    TextTable table({"flag", "tuned", "default", "contribution"});
    for (const auto& c : report.contributions) {
      if (!c.significant && std::abs(c.contribution_frac) < 0.01) continue;
      table.add_row({c.name, c.tuned_value, c.default_value,
                     format_percent(c.contribution_frac) +
                         (c.significant ? "" : " (noise)")});
    }
    std::printf("%s", table.render().c_str());
    std::printf("essential config (%zu flags): %s ms -> %s\n",
                report.essential_config.changed_flags().size(),
                fmt(report.essential_ms, 0).c_str(),
                report.essential_config.render_command_line().c_str());
  }

  if (!out_path.empty()) {
    if (save_configuration(outcome.best_config, out_path)) {
      std::printf("\ntuned configuration written to %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  if (!log_path.empty()) {
    if (outcome.db->save_csv(log_path)) {
      std::printf("evaluation log (%lld rows) written to %s\n",
                  static_cast<long long>(outcome.evaluations),
                  log_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", log_path.c_str());
      return 1;
    }
  }
  return 0;
}

int tune_suite(const std::string& suite_name, const SessionOptions& options,
               SearchStrategy& tuner, const std::string& out_path,
               SessionJournal* resume_journal, const std::string& log_path) {
  std::vector<WorkloadSpec> suite;
  if (suite_name == "specjvm2008") {
    suite = specjvm2008_startup();
  } else if (suite_name == "dacapo") {
    suite = dacapo();
  } else {
    std::fprintf(stderr, "error: unknown suite '%s'\n", suite_name.c_str());
    return 1;
  }
  JvmSimulator simulator;
  SuiteTuningSession session(simulator, suite, options);
  const SuiteOutcome outcome = resume_journal != nullptr
                                   ? session.resume(*resume_journal, tuner)
                                   : session.run(tuner);

  if (outcome.cancelled) {
    std::printf("\ninterrupted: admission closed, in-flight evaluations "
                "drained and committed; incumbent below\n");
  }
  std::printf("\ngeneral configuration for %s (geomean improvement %s):\n",
              suite_name.c_str(),
              format_percent(outcome.improvement_frac()).c_str());
  TextTable table({"workload", "improvement"});
  for (std::size_t i = 0; i < outcome.workload_names.size(); ++i) {
    table.add_row({outcome.workload_names[i],
                   format_percent(outcome.per_workload_improvement[i])});
  }
  std::printf("%s", table.render().c_str());
  std::printf("flags: %s\n", outcome.best_config.render_command_line().c_str());
  if (options.store != nullptr) {
    std::printf("store: %lld hit(s), %lld appended, %lld warm seed(s), "
                "%lld charged evaluation(s)\n",
                static_cast<long long>(outcome.store_hits),
                static_cast<long long>(outcome.store_appends),
                static_cast<long long>(outcome.warm_seeds),
                static_cast<long long>(outcome.charged_evaluations));
  }
  if (!out_path.empty() && !save_configuration(outcome.best_config, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!log_path.empty() && !outcome.db->save_csv(log_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", log_path.c_str());
    return 1;
  }
  return 0;
}

/// Matches a journaled suite metadata record (member names joined with ",")
/// back to a named suite.
std::string suite_name_for(const std::string& joined) {
  const auto join = [](const std::vector<WorkloadSpec>& suite) {
    std::string out;
    for (const WorkloadSpec& w : suite) {
      if (!out.empty()) out += ',';
      out += w.name;
    }
    return out;
  };
  if (join(specjvm2008_startup()) == joined) return "specjvm2008";
  if (join(dacapo()) == joined) return "dacapo";
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload;
  std::string suite;
  std::string tuner_name = "hierarchical";
  std::string objective_spec;
  std::string out_path;
  std::string replay_path;
  std::string trace_path;
  std::string journal_path;
  std::string resume_path;
  std::string log_path;
  JournalOptions journal_options;
  SessionOptions options;
  std::string store_path;
  TraceSink trace_sink;
  bool explain = false;
  bool threads_set = false;
  set_log_level(LogLevel::kWarn);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = next();
    } else if (arg == "--suite") {
      suite = next();
    } else if (arg == "--budget") {
      options.budget = jat::SimTime::minutes(std::atof(next()));
    } else if (arg == "--tuner") {
      tuner_name = next();
    } else if (arg == "--objective") {
      objective_spec = next();
    } else if (arg == "--list-objectives") {
      for (const std::string& line : list_objectives()) {
        std::printf("%s\n", line.c_str());
      }
      return 0;
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--reps") {
      options.repetitions = std::atoi(next());
    } else if (arg == "--threads" || arg == "--eval-threads") {
      options.eval_threads = static_cast<std::size_t>(std::atoi(next()));
      threads_set = true;
    } else if (arg == "--inflight") {
      options.inflight = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
      options.trace = &trace_sink;
    } else if (arg == "--journal") {
      journal_path = next();
    } else if (arg == "--resume") {
      resume_path = next();
    } else if (arg == "--log") {
      log_path = next();
    } else if (arg == "--store") {
      store_path = next();
    } else if (arg == "--warm-start") {
      options.warm_start = std::atoi(next());
    } else if (arg == "--no-store-reads") {
      options.store_reads = false;
    } else if (arg == "--kill-after-evals") {
      journal_options.crash_after_appends = std::atoi(next());
    } else if (arg == "--racing") {
      options.racing_factor = 1.3;
    } else if (arg == "--adaptive-reps") {
      options.measurement.adaptive = true;
      options.measurement.max_reps = std::atoi(next());
    } else if (arg == "--ci-rel") {
      options.measurement.ci_rel = std::atof(next());
    } else if (arg == "--race-p") {
      options.measurement.race_p = std::atof(next());
    } else if (arg == "--resilient") {
      options.resilient = true;
    } else if (arg == "--sandbox") {
      options.sandbox = true;
    } else if (arg == "--sandbox-workers") {
      options.sandbox = true;
      options.sandbox_options.workers =
          static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--eval-deadline-s") {
      options.sandbox = true;
      options.sandbox_options.eval_deadline_s = std::atof(next());
    } else if (arg == "--sandbox-rlimit-cpu") {
      options.sandbox = true;
      options.sandbox_options.rlimit_cpu_s = std::atoi(next());
    } else if (arg == "--sandbox-rlimit-as") {
      options.sandbox = true;
      options.sandbox_options.rlimit_as_mb = std::atoi(next());
    } else if (arg == "--sandbox-inject-kill") {
      options.sandbox = true;
      options.sandbox_options.inject.kill_rate = std::atof(next());
    } else if (arg == "--sandbox-inject-wedge") {
      options.sandbox = true;
      options.sandbox_options.inject.wedge_rate = std::atof(next());
    } else if (arg == "--sandbox-inject-torn") {
      options.sandbox = true;
      options.sandbox_options.inject.torn_rate = std::atof(next());
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--verbose") {
      jat::set_log_level(jat::LogLevel::kInfo);
    } else if (arg == "--list") {
      list_workloads();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }

  if (!objective_spec.empty()) {
    try {
      options.objective = make_objective(objective_spec);
    } catch (const ObjectiveError& error) {
      // Exit 2, not 1: a misspelt objective is a usage error, and scripts
      // can tell it apart from a failed tuning run.
      std::fprintf(stderr, "error: %s\n", error.what());
      return 2;
    }
  }

  if (!replay_path.empty()) {
    if (workload.empty()) {
      std::fprintf(stderr, "error: --replay needs --workload\n");
      return 1;
    }
    try {
      JvmSimulator simulator;
      const WorkloadSpec& w = find_workload(workload);
      const Configuration loaded =
          load_configuration(FlagRegistry::hotspot(), replay_path);
      RunnerOptions ro;
      ro.repetitions = std::max(5, options.repetitions);
      BenchmarkRunner runner(simulator, w, ro);
      const double base = runner.measure(Configuration(FlagRegistry::hotspot())).objective();
      const double tuned = runner.measure(loaded).objective();
      std::printf("replay of %s on %s:\n  default %s ms, tuned %s ms (%s)\n  %s\n",
                  replay_path.c_str(), workload.c_str(), fmt(base, 0).c_str(),
                  fmt(tuned, 0).c_str(),
                  format_percent(base > 0 ? (base - tuned) / base : 0).c_str(),
                  loaded.render_command_line().c_str());
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }
  if (workload.empty() && suite.empty() && resume_path.empty()) {
    usage();
    return 1;
  }
  if (store_path.empty() && (options.warm_start > 0 || !options.store_reads)) {
    std::fprintf(stderr,
                 "error: --warm-start / --no-store-reads need --store\n");
    return 1;
  }
  if (!resume_path.empty() && !journal_path.empty()) {
    std::fprintf(stderr,
                 "error: --resume appends to the resumed journal; do not also "
                 "pass --journal\n");
    return 1;
  }

  // Graceful interruption: Ctrl-C / SIGTERM close admission, drain the
  // in-flight evaluations, flush journal and trace, and print the
  // incumbent; a second Ctrl-C hard-exits. sigaction (not std::signal):
  // explicit flags — no SA_RESETHAND (the second SIGINT must still reach
  // our handler, not default-kill mid-cleanup), SA_RESTART so slow stdio
  // is not interrupted mid-report.
  options.cancel = &g_cancel;
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  try {
    if (!store_path.empty()) {
      options.store = ResultStore::open(store_path);
      const StoreStats stats = options.store->stats();
      std::printf("store %s: %lld record(s), %lld workload(s)%s\n",
                  options.store->path().c_str(),
                  static_cast<long long>(stats.records),
                  static_cast<long long>(stats.workloads),
                  options.store_reads ? "" : " (reads disabled)");
    }
    std::optional<SessionJournal> journal;
    SessionJournal* resume_journal = nullptr;
    if (!resume_path.empty()) {
      journal.emplace(SessionJournal::resume(resume_path, journal_options));
      resume_journal = &*journal;
      // Everything a bit-identical replay depends on comes from the journal;
      // only eval_threads (wall-clock parallelism, not trajectory) may be
      // overridden from the command line.
      const JournalMeta& meta = journal->meta();
      tuner_name = meta.tuner;
      options.objective = meta.objective == "run_time"
                              ? nullptr
                              : make_objective(meta.objective);
      options.budget = meta.budget;
      options.seed = meta.seed;
      options.repetitions = meta.repetitions;
      options.inflight = meta.inflight;
      options.per_run_overhead_s = meta.per_run_overhead_s;
      options.racing_factor = meta.racing_factor;
      options.measurement.adaptive = meta.adaptive;
      options.measurement.min_reps = meta.min_reps;
      options.measurement.max_reps = meta.max_reps;
      options.measurement.ci_rel = meta.ci_rel;
      options.measurement.race_p = meta.race_p;
      if (!threads_set) options.eval_threads = meta.eval_threads;
      if (meta.kind == "suite") {
        suite = suite_name_for(meta.workload);
        workload.clear();
        if (suite.empty()) {
          std::fprintf(stderr, "error: journal %s tunes unknown suite '%s'\n",
                       resume_path.c_str(), meta.workload.c_str());
          return 1;
        }
      } else {
        workload = meta.workload;
        suite.clear();
      }
      std::printf("resuming %s session on %s with %s (%zu committed "
                  "evaluations%s)\n",
                  meta.kind.c_str(), meta.workload.c_str(), meta.tuner.c_str(),
                  journal->committed().size(),
                  journal->ended() ? "; journaled run had completed" : "");
    } else if (!journal_path.empty()) {
      journal.emplace(SessionJournal::create(journal_path, journal_options));
      options.journal = &*journal;
    }

    auto tuner = make_tuner(tuner_name);
    if (tuner == nullptr) {
      std::fprintf(stderr, "error: unknown tuner '%s'\n", tuner_name.c_str());
      return 1;
    }

    const int rc =
        !suite.empty()
            ? tune_suite(suite, options, *tuner, out_path, resume_journal,
                         log_path)
            : tune_one(workload, options, *tuner, out_path, explain,
                       resume_journal, log_path);
    if (!trace_path.empty()) {
      if (trace_sink.save_jsonl(trace_path)) {
        std::printf("trace (%zu events) written to %s\n", trace_sink.size(),
                    trace_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 1;
      }
    }
    return rc;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
