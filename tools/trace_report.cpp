// trace_report — reconstructs session results from a JSONL trace alone.
//
// Reads a trace written by jat_tune --trace (or any TraceSink::save_jsonl)
// and prints, per session: the summary line, an F4-style convergence
// staircase sampled at budget checkpoints, per-phase budget attribution,
// and the harness/resilience counters. No ResultDb needed — everything is
// derived from the events, which is the point: the trace is a complete
// record of the session.
//
//   trace_report session.trace.jsonl
//   trace_report --checkpoints 16 session.trace.jsonl
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "harness/trace_analysis.hpp"
#include "support/trace.hpp"

namespace {

void usage() {
  std::printf(
      "trace_report — session report from a JSONL trace\n\n"
      "  trace_report [--checkpoints N] [--validate] TRACE.jsonl\n\n"
      "  --checkpoints N   convergence staircase sample points (default 8)\n"
      "  --validate        also check every event against the schema and\n"
      "                    exit nonzero on the first violation\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int checkpoints = 8;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--checkpoints") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --checkpoints needs a value\n");
        return 1;
      }
      checkpoints = std::atoi(argv[++i]);
      if (checkpoints < 1) {
        std::fprintf(stderr, "error: --checkpoints must be >= 1\n");
        return 1;
      }
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "error: more than one trace file given\n");
      return 1;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }

  try {
    // Lenient load: a trace from a crashed or killed writer may end in a
    // torn final record — drop it with a warning instead of refusing the
    // whole file.
    std::string warning;
    const auto events = jat::TraceSink::load_jsonl_file_lenient(path, &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "warning: %s: %s\n", path.c_str(), warning.c_str());
    }
    if (validate) {
      for (std::size_t i = 0; i < events.size(); ++i) {
        const std::string problem = jat::validate_trace_event(events[i]);
        if (!problem.empty()) {
          std::fprintf(stderr, "error: event %zu: %s\n", i, problem.c_str());
          return 1;
        }
      }
    }
    const auto sessions = jat::analyze_trace(events);
    if (sessions.empty()) {
      std::fprintf(stderr, "error: %s holds no session events\n", path.c_str());
      return 1;
    }
    std::printf("%s", jat::render_trace_report(sessions, checkpoints).c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
